// Unit + concurrency tests for allocation statistics and the type-stable
// block pool.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "alloc/block_pool.hpp"
#include "alloc/counted.hpp"
#include "alloc/stats.hpp"

namespace {

using namespace lfrc::alloc;

TEST(Stats, AllocFreeBalance) {
    const auto before = snapshot();
    note_alloc(128);
    EXPECT_EQ(live_bytes(), before.live_bytes + 128);
    EXPECT_EQ(live_objects(), before.live_objects + 1);
    note_free(128);
    EXPECT_EQ(live_bytes(), before.live_bytes);
    EXPECT_EQ(live_objects(), before.live_objects);
    const auto after = snapshot();
    EXPECT_EQ(after.total_allocations, before.total_allocations + 1);
    EXPECT_EQ(after.total_frees, before.total_frees + 1);
}

TEST(Stats, ScopeCheckDetectsLeak) {
    scope_check check;
    note_alloc(64);
    EXPECT_EQ(check.leaked_objects(), 1);
    EXPECT_EQ(check.leaked_bytes(), 64);
    note_free(64);
    EXPECT_EQ(check.leaked_objects(), 0);
    EXPECT_EQ(check.leaked_bytes(), 0);
}

TEST(Counted, NewDeleteReportsExactSize) {
    struct widget {
        std::uint64_t payload[4];
    };
    scope_check check;
    widget* w = counted_new<widget>();
    EXPECT_EQ(check.leaked_bytes(), static_cast<std::int64_t>(sizeof(widget)));
    counted_delete(w);
    EXPECT_EQ(check.leaked_bytes(), 0);
}

TEST(Counted, BaseMixinCountsDerivedSize) {
    struct big : counted_base {
        std::uint64_t payload[16];
    };
    scope_check check;
    auto* b = new big;
    EXPECT_GE(check.leaked_bytes(), static_cast<std::int64_t>(sizeof(big)));
    delete b;
    EXPECT_EQ(check.leaked_bytes(), 0);
}

TEST(BlockPool, AllocateReturnsDistinctBlocks) {
    block_pool<32> pool;
    std::set<void*> seen;
    for (int i = 0; i < 3000; ++i) {
        void* p = pool.allocate();
        ASSERT_NE(p, nullptr);
        EXPECT_TRUE(seen.insert(p).second) << "duplicate live block";
        std::memset(p, 0xAB, 32);
    }
    EXPECT_EQ(pool.blocks_carved(), 3000u);
    for (void* p : seen) pool.deallocate(p);
}

TEST(BlockPool, RecyclesLifo) {
    block_pool<16> pool;
    void* a = pool.allocate();
    void* b = pool.allocate();
    pool.deallocate(a);
    pool.deallocate(b);
    // LIFO: most recently freed comes back first.
    EXPECT_EQ(pool.allocate(), b);
    EXPECT_EQ(pool.allocate(), a);
}

TEST(BlockPool, FootprintMonotone) {
    scope_check check;
    {
        block_pool<64> pool;
        EXPECT_EQ(pool.footprint_bytes(), 0u);
        std::vector<void*> blocks;
        for (int i = 0; i < 2000; ++i) blocks.push_back(pool.allocate());
        const auto grown = pool.footprint_bytes();
        EXPECT_GT(grown, 0u);
        for (void* p : blocks) pool.deallocate(p);
        // Freeing everything does NOT shrink the pool — the property the
        // paper contrasts LFRC against (experiment E4).
        EXPECT_EQ(pool.footprint_bytes(), grown);
    }
    // Pool destruction returns the chunks.
    EXPECT_EQ(check.leaked_bytes(), 0);
}

TEST(BlockPool, TypedPoolConstructsAndRecycles) {
    struct node {
        int value;
        node* next;
    };
    typed_pool<node> pool;
    node* n = pool.create(node{41, nullptr});
    EXPECT_EQ(n->value, 41);
    pool.recycle(n);
    node* m = pool.create(node{7, nullptr});
    EXPECT_EQ(m, n) << "type-stable pool must reuse the freed slot";
    EXPECT_EQ(m->value, 7);
    pool.recycle(m);
}

TEST(BlockPool, ConcurrentAllocFreeNoDuplicates) {
    constexpr int threads = 4;
    constexpr int iters = 20000;
    block_pool<24> pool;
    std::atomic<bool> duplicate{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            std::vector<void*> held;
            for (int i = 0; i < iters; ++i) {
                void* p = pool.allocate();
                // Stamp ownership and verify nobody else holds this block.
                auto* word = static_cast<std::uint64_t*>(p);
                const std::uint64_t stamp =
                    (static_cast<std::uint64_t>(t) << 32) | static_cast<std::uint32_t>(i);
                *word = stamp;
                held.push_back(p);
                if ((i & 7) == 0) {
                    for (void* h : held) {
                        if (*static_cast<std::uint64_t*>(h) >> 32 !=
                                static_cast<std::uint64_t>(t) &&
                            h == held.back()) {
                            duplicate = true;
                        }
                    }
                }
                if (held.size() > 64 || (i & 3) == 0) {
                    pool.deallocate(held.back());
                    held.pop_back();
                }
            }
            for (void* p : held) pool.deallocate(p);
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_FALSE(duplicate.load());
}

}  // namespace
