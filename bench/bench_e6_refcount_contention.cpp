// Experiment E6 — reference-count contention on a hot shared pointer
// (DESIGN.md §6).
//
// Paper context (§5/§6): every LFRCLoad performs a DCAS that *writes* the
// pointee's count, so N readers of one hot pointer serialize on its count
// word — the structural cost of counting that protection-based schemes
// (hazard pointers: per-thread announce slots) avoid. The paper accepts this
// cost for the simplicity and GC-independence it buys; this experiment
// makes the cost visible.
//
// Expected shape (reads of ONE shared pointer, no writers):
//   plain-load >> hp-protect >> lfrc-load, and the gap to lfrc grows with
//   reader count (all readers RMW the same cache line).
//
// The lfrc-borrow column measures the epoch-borrowed fast path
// (domain::load_borrowed): it replaces the count DCAS with an epoch pin
// (one write to a thread-private announce slot), so it should track
// hp-protect, not lfrc-load — the remedy for the cost this experiment
// documents.
//
//   --duration=0.4 --max_threads=4 [--json=BENCH_e6.json]
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "lfrc/lfrc.hpp"
#include "reclaim/hazard.hpp"
#include "util/bench_support.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

struct hot_node : domain::object {
    std::uint64_t payload = 42;
    void lfrc_visit_children(domain::child_visitor&) noexcept override {}
};

volatile std::uint64_t g_sink;

double lfrc_read_throughput(int threads, double duration) {
    domain::ptr_field<hot_node> shared;
    domain::store_alloc(shared, domain::make<hot_node>());
    const auto result = util::run_for(threads, duration, [&](int) {
        thread_local domain::local_ptr<hot_node> local;
        // Each load increments the new target and decrements the previous
        // one: exactly two shared RMWs per read, steady state.
        domain::load(shared, local);
        g_sink = local->payload;
    });
    domain::store(shared, static_cast<hot_node*>(nullptr));
    flush_deferred_frees();
    return result.mops_per_sec();
}

double borrow_read_throughput(int threads, double duration) {
    domain::ptr_field<hot_node> shared;
    domain::store_alloc(shared, domain::make<hot_node>());
    const auto result = util::run_for(threads, duration, [&](int) {
        // Epoch pin + plain read of the cell: no write to the pointee's
        // count word, so readers share the hot line read-only.
        auto b = domain::load_borrowed(shared);
        g_sink = b->payload;
    });
    domain::store(shared, static_cast<hot_node*>(nullptr));
    flush_deferred_frees();
    return result.mops_per_sec();
}

struct plain_node {
    std::uint64_t payload = 42;
};

double hp_read_throughput(int threads, double duration) {
    std::atomic<plain_node*> shared{new plain_node};
    const auto result = util::run_for(threads, duration, [&](int) {
        thread_local reclaim::hazard_domain::hp hp{reclaim::hazard_domain::global()};
        plain_node* p = hp.protect(shared);
        g_sink = p->payload;
        hp.clear();
    });
    delete shared.exchange(nullptr);
    return result.mops_per_sec();
}

double plain_read_throughput(int threads, double duration) {
    std::atomic<plain_node*> shared{new plain_node};
    const auto result = util::run_for(threads, duration, [&](int) {
        // Unsafe baseline: no protection at all (legal only because nothing
        // frees here) — the absolute ceiling.
        g_sink = shared.load(std::memory_order_acquire)->payload;
    });
    delete shared.exchange(nullptr);
    return result.mops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const double duration = flags.get_double("duration", 0.4);
    const int max_threads = static_cast<int>(flags.get_u64("max_threads", 4));

    std::printf("E6: hot-pointer read throughput by protection scheme (Mops/s), "
                "duration/cell=%.2fs\n\n",
                duration);

    struct row_t {
        int readers;
        double plain, hp, lfrc_load, lfrc_borrow;
    };
    std::vector<row_t> rows;

    util::table table({"readers", "plain-load", "hp-protect", "lfrc-load",
                       "lfrc-borrow", "hp/lfrc", "borrow/lfrc"});
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        const double plain = plain_read_throughput(threads, duration);
        const double hp = hp_read_throughput(threads, duration);
        const double lfrc_tp = lfrc_read_throughput(threads, duration);
        const double borrow = borrow_read_throughput(threads, duration);
        rows.push_back({threads, plain, hp, lfrc_tp, borrow});
        table.add_row({std::to_string(threads), util::table::fmt(plain),
                       util::table::fmt(hp), util::table::fmt(lfrc_tp),
                       util::table::fmt(borrow),
                       util::table::fmt(lfrc_tp > 0 ? hp / lfrc_tp : 0, 1) + "x",
                       util::table::fmt(lfrc_tp > 0 ? borrow / lfrc_tp : 0, 1) + "x"});
    }
    table.print();

    std::printf("\nshape check: the counted load pays two shared RMWs (DCAS on the\n"
                "count) per read; protection-based reads only write thread-private\n"
                "slots. lfrc-borrow applies that remedy inside LFRC itself — it\n"
                "should track hp-protect and beat lfrc-load by a growing margin.\n");

    // Machine-readable baseline for perf-trajectory tracking across PRs
    // (scripts/run_all.sh writes this as BENCH_e6.json).
    const std::string json_path = flags.get_string("json", "");
    if (!json_path.empty()) {
        std::FILE* f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "E6: cannot open %s for writing\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"e6_refcount_contention\",\n"
                        "  \"duration_per_cell_sec\": %.3f,\n  \"rows\": [\n",
                     duration);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const row_t& r = rows[i];
            std::fprintf(f,
                         "    {\"readers\": %d, \"plain_mops\": %.3f, \"hp_mops\": %.3f, "
                         "\"lfrc_load_mops\": %.3f, \"lfrc_borrow_mops\": %.3f, "
                         "\"borrow_speedup_vs_load\": %.2f}%s\n",
                         r.readers, r.plain, r.hp, r.lfrc_load, r.lfrc_borrow,
                         r.lfrc_load > 0 ? r.lfrc_borrow / r.lfrc_load : 0.0,
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
