// Experiment E4 — memory footprint over grow/shrink phases, including the
// Valois-freelist ablation (DESIGN.md §6).
//
// Paper claim (§1): LFRC "allows the memory consumption of the
// implementation to grow and shrink over time", unlike freelist-based
// reference counting (Valois [19]) where storage "cannot in general be
// reused for other purposes", and unlike a leaky GC-dependent deployment.
//
// Expected shape, per phase, for the same push/pop waves on a stack:
//   lfrc    : returns to ~0 after every shrink
//   valois  : monotone high-water mark (never shrinks)
//   leaky   : monotone and growing with TOTAL pushes, not the high-water
//             mark (every popped node is lost)
//
//   --waves=4 --wave_size=25000
#include <cstdio>
#include <string>

#include "alloc/stats.hpp"
#include "containers/reclaim_stack.hpp"
#include "containers/treiber_stack.hpp"
#include "containers/valois_stack.hpp"
#include "lfrc/lfrc.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

// Track each structure's bytes via the global counter deltas around its ops.
class byte_meter {
  public:
    byte_meter() : base_(alloc::live_bytes()) {}
    template <typename F>
    void run(F&& f) {
        const auto before = alloc::live_bytes();
        f();
        bytes_ += alloc::live_bytes() - before;
        (void)base_;
    }
    std::int64_t bytes() const { return bytes_; }

  private:
    std::int64_t base_;
    std::int64_t bytes_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const int waves = static_cast<int>(flags.get_u64("waves", 4));
    const int wave_size = static_cast<int>(flags.get_u64("wave_size", 25000));

    std::printf("E4: live bytes per structure after each phase "
                "(%d grow/shrink waves of %d nodes)\n\n",
                waves, wave_size);

    containers::treiber_stack<domain, std::int64_t> lfrc_stack;
    containers::valois_stack<std::int64_t> valois;
    containers::reclaim_stack<std::int64_t, smr::leaky<>> leaky;

    byte_meter lfrc_bytes, valois_bytes, leaky_bytes;

    util::table table({"phase", "lfrc", "valois-freelist", "leaky"});
    auto sample = [&](const std::string& phase) {
        table.add_row({phase, std::to_string(lfrc_bytes.bytes()),
                       std::to_string(valois_bytes.bytes()),
                       std::to_string(leaky_bytes.bytes())});
    };

    sample("start");
    for (int w = 1; w <= waves; ++w) {
        lfrc_bytes.run([&] {
            for (int i = 0; i < wave_size; ++i) lfrc_stack.push(i);
        });
        valois_bytes.run([&] {
            for (int i = 0; i < wave_size; ++i) valois.push(i);
        });
        leaky_bytes.run([&] {
            for (int i = 0; i < wave_size; ++i) leaky.push(i);
        });
        sample("grow " + std::to_string(w));

        lfrc_bytes.run([&] {
            for (int i = 0; i < wave_size; ++i) lfrc_stack.pop();
            flush_deferred_frees();
        });
        valois_bytes.run([&] {
            for (int i = 0; i < wave_size; ++i) valois.pop();
        });
        leaky_bytes.run([&] {
            for (int i = 0; i < wave_size; ++i) leaky.pop();
        });
        sample("shrink " + std::to_string(w));
    }
    table.print();

    std::printf("\nshape check: lfrc returns to ~0 each shrink; valois plateaus at the\n"
                "high-water mark; leaky grows with total pushes (%d x %d nodes).\n",
                waves, wave_size);
    return 0;
}
