// Experiment E7 — destroying the last pointer to a large structure: eager
// vs incremental (DESIGN.md §6; the ablation for the §7 extension).
//
// Paper claim (§7): "[incremental collection] would avoid long delays when
// a thread destroys the last pointer to a large structure."
//
// For lists of N nodes this harness measures
//   eager total      : one LFRCDestroy call tearing down all N (the stall)
//   incr worst slice : the LONGEST single step(budget) pause
//   incr total       : sum of all slices (bounded-overhead check)
//
// Expected shape: eager total grows linearly with N (multi-millisecond at
// N=1e6); the incremental worst slice stays ~flat at the budget size, while
// incremental total stays within a small constant factor of eager total.
//
//   --budget=1024 --max_n=1000000
#include <cstdio>
#include <string>

#include "lfrc/incremental.hpp"
#include "lfrc/lfrc.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

struct chain_node : domain::object {
    domain::ptr_field<chain_node> next;
    std::uint64_t payload = 0;
    void lfrc_visit_children(domain::child_visitor& v) noexcept override {
        v.on_child(next.exclusive_get());
    }
};

domain::local_ptr<chain_node> build_chain(std::uint64_t n) {
    domain::local_ptr<chain_node> head;
    for (std::uint64_t i = 0; i < n; ++i) {
        auto nd = domain::make<chain_node>();
        domain::store(nd->next, head);
        head = std::move(nd);
    }
    return head;
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const std::size_t budget = flags.get_u64("budget", 1024);
    const std::uint64_t max_n = flags.get_u64("max_n", 1'000'000);

    std::printf("E7: last-pointer destruction latency, eager vs incremental "
                "(budget=%zu objects/slice)\n\n",
                budget);

    util::table table({"list size", "eager total ms", "incr worst slice ms",
                       "incr total ms", "slices"});
    for (std::uint64_t n = 1000; n <= max_n; n *= 10) {
        // Eager: the paper's LFRCDestroy semantics, one call.
        double eager_ms = 0;
        {
            auto head = build_chain(n);
            chain_node* raw = head.release();
            util::stopwatch sw;
            domain::destroy(raw);
            eager_ms = static_cast<double>(sw.elapsed_ns()) / 1e6;
        }
        flush_deferred_frees();

        // Incremental: park, then bounded slices.
        double worst_slice_ms = 0;
        double incr_total_ms = 0;
        std::uint64_t slices = 0;
        {
            incremental_destroyer<domain> destroyer;
            auto head = build_chain(n);
            {
                chain_node* raw = head.release();
                util::stopwatch sw;
                destroyer.destroy(raw);  // O(1): just parks
                const double ms = static_cast<double>(sw.elapsed_ns()) / 1e6;
                incr_total_ms += ms;
                if (ms > worst_slice_ms) worst_slice_ms = ms;
            }
            for (;;) {
                util::stopwatch sw;
                const std::size_t done = destroyer.step(budget);
                const double ms = static_cast<double>(sw.elapsed_ns()) / 1e6;
                if (done == 0) break;
                ++slices;
                incr_total_ms += ms;
                if (ms > worst_slice_ms) worst_slice_ms = ms;
            }
        }
        flush_deferred_frees();

        table.add_row({std::to_string(n), util::table::fmt(eager_ms, 3),
                       util::table::fmt(worst_slice_ms, 3),
                       util::table::fmt(incr_total_ms, 3), std::to_string(slices)});
    }
    table.print();

    std::printf("\nshape check: eager grows ~linearly in N; the worst incremental\n"
                "slice is bounded by the budget regardless of N.\n");
    return 0;
}
