// Experiment E9 — end-to-end KV-store throughput by reclaimer policy
// (DESIGN.md §9/§10 / EXPERIMENTS.md E9).
//
// E6 measured the cost of counted loads on one hot pointer in isolation;
// E9 asks the question the paper's §6 comparison actually turns on: what
// does the reclamation discipline cost *in a serving workload*, where
// lookups walk hash buckets, writes churn value objects, and the hot set
// is zipf-skewed? Since the smr unification, every cell runs the SAME
// store body (store::kv_store over a generic list core) — the only
// variable is the smr policy threaded through its template parameter:
//
//   lfrc-counted  every lookup through LFRCLoad/load_linked — the
//                 paper's Figure-2 discipline end to end;
//   lfrc-borrow   epoch-borrowed read fast path — LFRC ownership with
//                 protection-priced reads;
//   ebr           epoch-based retire-on-unlink (what "the GC will
//                 handle it" costs when the GC is an epoch scheme);
//   hp            hazard pointers (Michael 2002);
//   deferred      thread-local deferred RC (ABW/libsref): epoch-pinned
//                 raw reads, link deltas in per-thread tables, review
//                 queue for zero-detection — RC semantics at ~EBR price;
//   leaky         never frees — the unsafe ceiling.
//
// (smr::gc_heap is excluded: the store's versioned value slots need the
// policy's vslot protocol, which a stop-the-world GC has no use for.)
//
// Expected shape: leaky >= ebr ~ lfrc-borrow > hp > lfrc-counted, with
// the borrow-vs-counted gap growing with threads (count DCASes serialize
// on hot keys' value cells; zipf makes some keys hot by construction).
// `retired` is the policy's retire-queue depth sampled after the timed
// run and before drain — it shows how much garbage each discipline lets
// accumulate under load (leaky's figure is its leak).
//
//   --duration=0.4 --threads=1,4,8 --keyspace=16384 --get_percent=80
//   --theta=0.99 [--json=BENCH_e9.json]
#include <cstdio>
#include <string>
#include <vector>

#include "alloc/arena.hpp"
#include "lfrc/lfrc.hpp"
#include "smr/smr.hpp"
#include "store/store.hpp"
#include "store/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

std::vector<int> parse_thread_list(const std::string& spec) {
    std::vector<int> out;
    int cur = 0;
    bool have = false;
    for (const char c : spec) {
        if (c >= '0' && c <= '9') {
            cur = cur * 10 + (c - '0');
            have = true;
        } else if (have) {
            out.push_back(cur);
            cur = 0;
            have = false;
        }
    }
    if (have) out.push_back(cur);
    if (out.empty()) out.push_back(1);
    return out;
}

struct run_row {
    std::string policy;
    int threads = 0;
    double mops = 0.0;
    double hit_rate = 0.0;
    std::uint64_t retired = 0;   ///< retire-queue depth after run, before drain
    std::uint64_t residual = 0;  ///< items still pending after bounded drain
};

store::workload_config base_config(const util::cli_flags& flags, int threads) {
    store::workload_config cfg;
    cfg.threads = threads;
    cfg.duration_seconds = flags.get_double("duration", 0.4);
    cfg.keyspace = flags.get_u64("keyspace", 1ULL << 14);
    cfg.get_percent = static_cast<int>(flags.get_u64("get_percent", 80));
    cfg.zipf_theta = flags.get_double("theta", 0.99);
    cfg.seed = flags.get_u64("seed", 1);
    return cfg;
}

/// One cell: build the store for this policy, run the workload, sample the
/// retire-queue depth, then drain. Ops picks the read discipline (counted
/// vs borrowed vs the policy's own guard).
template <typename Ops, typename PolicyOrDomain>
run_row run_store(const store::workload_config& cfg) {
    using store_t = store::kv_store<PolicyOrDomain, std::uint64_t, std::uint64_t>;
    store_t s(typename store_t::config{8, 64});
    Ops ops(s);
    const auto res = store::run_workload(ops, cfg);
    run_row row;
    row.policy = Ops::name();
    row.threads = cfg.threads;
    row.mops = res.mops();
    row.hit_rate = res.hit_rate();
    row.retired = s.reclaimer_pending();
    row.residual = s.drain();
    return row;
}

// The policy matrix: one binary, one loop, one store body. Order is
// cheapest-reclaimer-last so a leak in one cell can't inflate RSS for
// the ones after it.
using run_fn = run_row (*)(const store::workload_config&);
constexpr run_fn kPolicyMatrix[] = {
    &run_store<store::kv_store_counted_ops<domain>, domain>,
    &run_store<store::kv_store_borrow_ops<domain>, domain>,
    &run_store<store::kv_store_policy_ops<smr::ebr<>>, smr::ebr<>>,
    &run_store<store::kv_store_policy_ops<smr::hp<>>, smr::hp<>>,
    &run_store<store::kv_store_policy_ops<smr::deferred<>>, smr::deferred<>>,
    &run_store<store::kv_store_policy_ops<smr::leaky<>>, smr::leaky<>>,
};

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const auto thread_counts = parse_thread_list(flags.get_string("threads", "1,4,8"));

    std::printf("E9: KV-store throughput (Mops/s), %d%%/%d%% get/put, zipf "
                "theta=%.2f, keyspace=%llu, duration/cell=%.2fs\n\n",
                static_cast<int>(flags.get_u64("get_percent", 80)),
                100 - static_cast<int>(flags.get_u64("get_percent", 80)),
                flags.get_double("theta", 0.99),
                static_cast<unsigned long long>(flags.get_u64("keyspace", 1ULL << 14)),
                flags.get_double("duration", 0.4));

    std::vector<run_row> rows;
    util::table table({"threads", "policy", "Mops/s", "hit-rate", "retired", "residual"});
    for (const int threads : thread_counts) {
        const auto cfg = base_config(flags, threads);
        for (const run_fn run : kPolicyMatrix) {
            const run_row row = run(cfg);
            table.add_row({std::to_string(row.threads), row.policy,
                           util::table::fmt(row.mops), util::table::fmt(row.hit_rate),
                           std::to_string(row.retired), std::to_string(row.residual)});
            rows.push_back(row);
        }
    }
    table.print();

    // The allocation seam all of the above ran through: magazine hits are
    // atomics-free allocations, remote pops/chain steals are the cross-slot
    // recycling traffic, carved is fresh slab growth (stops rising once the
    // working set is resident), fallback counts >2048 B system-heap routes.
    const auto arena_stats = alloc::arena::instance().snapshot();
    std::printf("\narena: footprint=%.1f MiB carved=%llu magazine_hits=%llu "
                "remote_pops=%llu chain_steals=%llu local_frees=%llu "
                "remote_frees=%llu fallback=%llu\n",
                static_cast<double>(arena_stats.footprint_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(arena_stats.carved),
                static_cast<unsigned long long>(arena_stats.magazine_hits),
                static_cast<unsigned long long>(arena_stats.remote_pops),
                static_cast<unsigned long long>(arena_stats.chain_steals),
                static_cast<unsigned long long>(arena_stats.local_frees),
                static_cast<unsigned long long>(arena_stats.remote_frees),
                static_cast<unsigned long long>(arena_stats.fallback_allocs));

    std::printf("\nshape check: lfrc-borrow should track ebr (both pay one epoch\n"
                "pin per read) and pull away from lfrc-counted as threads grow;\n"
                "leaky is the unsafe ceiling (its `retired` column is the leak).\n"
                "residual=0 confirms every reclaiming run drained its deferred\n"
                "frees after the store's graceful shutdown.\n");

    const std::string json_path = flags.get_string("json", "");
    if (!json_path.empty()) {
        std::FILE* f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "E9: cannot open %s for writing\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"e9_store_throughput\",\n"
                        "  \"get_percent\": %d,\n  \"zipf_theta\": %.2f,\n"
                        "  \"keyspace\": %llu,\n  \"duration_per_cell_sec\": %.3f,\n"
                        "  \"rows\": [\n",
                     static_cast<int>(flags.get_u64("get_percent", 80)),
                     flags.get_double("theta", 0.99),
                     static_cast<unsigned long long>(flags.get_u64("keyspace", 1ULL << 14)),
                     flags.get_double("duration", 0.4));
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const run_row& r = rows[i];
            std::fprintf(f,
                         "    {\"threads\": %d, \"policy\": \"%s\", \"mops\": %.3f, "
                         "\"hit_rate\": %.3f, \"retired\": %llu, \"residual\": %llu}%s\n",
                         r.threads, r.policy.c_str(), r.mops, r.hit_rate,
                         static_cast<unsigned long long>(r.retired),
                         static_cast<unsigned long long>(r.residual),
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"arena\": {\"footprint_bytes\": %llu, "
                     "\"carved\": %llu, \"magazine_hits\": %llu, "
                     "\"remote_pops\": %llu, \"chain_steals\": %llu, "
                     "\"local_frees\": %llu, \"remote_frees\": %llu, "
                     "\"fallback_allocs\": %llu}\n}\n",
                     static_cast<unsigned long long>(arena_stats.footprint_bytes),
                     static_cast<unsigned long long>(arena_stats.carved),
                     static_cast<unsigned long long>(arena_stats.magazine_hits),
                     static_cast<unsigned long long>(arena_stats.remote_pops),
                     static_cast<unsigned long long>(arena_stats.chain_steals),
                     static_cast<unsigned long long>(arena_stats.local_frees),
                     static_cast<unsigned long long>(arena_stats.remote_frees),
                     static_cast<unsigned long long>(arena_stats.fallback_allocs));
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
