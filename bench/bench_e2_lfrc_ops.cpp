// Experiment E2 — per-operation cost of the Figure 2 LFRC operations, on
// both DCAS engines (google-benchmark binary).
//
// Paper claim (§5): the operations are short lock-free loops; LFRCLoad is
// the expensive one (it is the only one that *requires* DCAS — the paper's
// central observation), LFRCStore/Copy/Destroy need only CAS, and LFRCDCAS
// pays two counts plus the DCAS itself.
//
// Expected shape: load > dcas-op > store > cas > copy ≈ destroy; the mcas
// engine multiplies DCAS-bearing ops by the descriptor-protocol constant,
// and leaves CAS-only ops nearly unchanged.
//
// LFRCLoadBorrowed / BorrowPromote measure the epoch-borrowed fast path:
// the borrow replaces the load's count DCAS with an epoch pin, and promote
// adds back one increment-if-nonzero CAS when the reference must outlive
// the pin.
#include <benchmark/benchmark.h>

#include "lfrc/lfrc.hpp"

using namespace lfrc;

namespace {

template <typename D>
struct bench_node : D::object {
    typename D::template ptr_field<bench_node> next;
    std::uint64_t payload = 0;
    void lfrc_visit_children(typename D::child_visitor& v) noexcept override {
        v.on_child(next.exclusive_get());
    }
};

template <typename D>
void bm_make_destroy(benchmark::State& state) {
    for (auto _ : state) {
        auto p = D::template make<bench_node<D>>();
        benchmark::DoNotOptimize(p.get());
    }
    flush_deferred_frees();
}

template <typename D>
void bm_load(benchmark::State& state) {
    typename D::template ptr_field<bench_node<D>> shared;
    D::store_alloc(shared, D::template make<bench_node<D>>());
    typename D::template local_ptr<bench_node<D>> local;
    for (auto _ : state) {
        D::load(shared, local);
        benchmark::DoNotOptimize(local.get());
    }
    D::store(shared, static_cast<bench_node<D>*>(nullptr));
    local.reset();
    flush_deferred_frees();
}

template <typename D>
void bm_store(benchmark::State& state) {
    typename D::template ptr_field<bench_node<D>> shared;
    auto a = D::template make<bench_node<D>>();
    for (auto _ : state) {
        D::store(shared, a.get());
    }
    D::store(shared, static_cast<bench_node<D>*>(nullptr));
    a.reset();
    flush_deferred_frees();
}

template <typename D>
void bm_copy(benchmark::State& state) {
    auto a = D::template make<bench_node<D>>();
    typename D::template local_ptr<bench_node<D>> local;
    for (auto _ : state) {
        D::copy(local, a.get());
    }
    local.reset();
    a.reset();
    flush_deferred_frees();
}

template <typename D>
void bm_cas(benchmark::State& state) {
    typename D::template ptr_field<bench_node<D>> shared;
    auto a = D::template make<bench_node<D>>();
    auto b = D::template make<bench_node<D>>();
    D::store(shared, a.get());
    bench_node<D>* from = a.get();
    bench_node<D>* to = b.get();
    for (auto _ : state) {
        benchmark::DoNotOptimize(D::cas(shared, from, to));
        std::swap(from, to);
    }
    D::store(shared, static_cast<bench_node<D>*>(nullptr));
    a.reset();
    b.reset();
    flush_deferred_frees();
}

template <typename D>
void bm_dcas(benchmark::State& state) {
    typename D::template ptr_field<bench_node<D>> f0, f1;
    auto a = D::template make<bench_node<D>>();
    auto b = D::template make<bench_node<D>>();
    D::store(f0, a.get());
    D::store(f1, b.get());
    bench_node<D>* x = a.get();
    bench_node<D>* y = b.get();
    for (auto _ : state) {
        benchmark::DoNotOptimize(D::dcas(f0, f1, x, y, y, x));
        std::swap(x, y);
    }
    D::store(f0, static_cast<bench_node<D>*>(nullptr));
    D::store(f1, static_cast<bench_node<D>*>(nullptr));
    a.reset();
    b.reset();
    flush_deferred_frees();
}

template <typename D>
void bm_load_borrowed(benchmark::State& state) {
    // The epoch-borrowed counterpart of bm_load: pin + read, no count DCAS.
    typename D::template ptr_field<bench_node<D>> shared;
    D::store_alloc(shared, D::template make<bench_node<D>>());
    for (auto _ : state) {
        auto b = D::load_borrowed(shared);
        benchmark::DoNotOptimize(b.get());
    }
    D::store(shared, static_cast<bench_node<D>*>(nullptr));
    flush_deferred_frees();
}

template <typename D>
void bm_borrow_promote(benchmark::State& state) {
    // Borrow + upgrade to a counted reference: the price of keeping a
    // borrowed pointer past its pinned section.
    typename D::template ptr_field<bench_node<D>> shared;
    D::store_alloc(shared, D::template make<bench_node<D>>());
    for (auto _ : state) {
        auto b = D::load_borrowed(shared);
        auto p = b.promote();
        benchmark::DoNotOptimize(p.get());
    }
    D::store(shared, static_cast<bench_node<D>*>(nullptr));
    flush_deferred_frees();
}

template <typename D>
void bm_failed_cas(benchmark::State& state) {
    // Failure path: the compensating destroy (lines 38..39 analogue).
    typename D::template ptr_field<bench_node<D>> shared;
    auto a = D::template make<bench_node<D>>();
    auto wrong = D::template make<bench_node<D>>();
    D::store(shared, a.get());
    for (auto _ : state) {
        benchmark::DoNotOptimize(D::cas(shared, wrong.get(), wrong.get()));
    }
    D::store(shared, static_cast<bench_node<D>*>(nullptr));
    a.reset();
    wrong.reset();
    flush_deferred_frees();
}

}  // namespace

BENCHMARK(bm_make_destroy<domain>)->Name("E2/mcas/make+destroy");
BENCHMARK(bm_load<domain>)->Name("E2/mcas/LFRCLoad");
BENCHMARK(bm_load_borrowed<domain>)->Name("E2/mcas/LFRCLoadBorrowed");
BENCHMARK(bm_borrow_promote<domain>)->Name("E2/mcas/BorrowPromote");
BENCHMARK(bm_store<domain>)->Name("E2/mcas/LFRCStore");
BENCHMARK(bm_copy<domain>)->Name("E2/mcas/LFRCCopy");
BENCHMARK(bm_cas<domain>)->Name("E2/mcas/LFRCCAS");
BENCHMARK(bm_dcas<domain>)->Name("E2/mcas/LFRCDCAS");
BENCHMARK(bm_failed_cas<domain>)->Name("E2/mcas/LFRCCAS-fail");

BENCHMARK(bm_make_destroy<locked_domain>)->Name("E2/locked/make+destroy");
BENCHMARK(bm_load<locked_domain>)->Name("E2/locked/LFRCLoad");
BENCHMARK(bm_load_borrowed<locked_domain>)->Name("E2/locked/LFRCLoadBorrowed");
BENCHMARK(bm_borrow_promote<locked_domain>)->Name("E2/locked/BorrowPromote");
BENCHMARK(bm_store<locked_domain>)->Name("E2/locked/LFRCStore");
BENCHMARK(bm_copy<locked_domain>)->Name("E2/locked/LFRCCopy");
BENCHMARK(bm_cas<locked_domain>)->Name("E2/locked/LFRCCAS");
BENCHMARK(bm_dcas<locked_domain>)->Name("E2/locked/LFRCDCAS");
BENCHMARK(bm_failed_cas<locked_domain>)->Name("E2/locked/LFRCCAS-fail");

BENCHMARK_MAIN();
