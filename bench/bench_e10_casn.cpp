// E10 — descriptor reuse vs allocate+retire: what did "Reuse, don't
// Recycle" buy the software CASN?
//
// The production engine (dcas/mcas_engine.hpp) owns a fixed array of
// permanent per-slot descriptors named by sequence-tagged words; a casn
// allocates nothing and retires nothing. This bench freezes the engine it
// replaced — pool-allocated descriptors reclaimed through the global epoch
// domain, one mcas + N rdcss retire() calls per operation — verbatim in
// `e10_baseline` below, and races the two on the same workload: casn(2)
// and casn(3) over a shared cell array with uniformly random distinct
// targets.
//
// Expected shape: reuse wins on two axes. Per-op, it drops the pool
// round-trips, the epoch pin, and the retire bookkeeping from the hot
// path; system-wide, it stops feeding the reclaimer entirely (the
// `retired` column — millions/sec for the baseline, identically zero for
// reuse, confirmed against the epoch domain's pending count).
//
//   --duration=0.4 --max_threads=8 [--json=BENCH_e10.json]
#include <cstdio>
#include <string>
#include <vector>

#include "alloc/block_pool.hpp"
#include "dcas/cell.hpp"
#include "dcas/mcas_engine.hpp"
#include "reclaim/epoch.hpp"
#include "util/bench_support.hpp"
#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

// ---------------------------------------------------------------------------
// The pre-reuse engine, frozen at the commit that replaced it. Identical
// protocol (Harris RDCSS + MCAS, address-ordered entries, helping), but
// descriptors are pool blocks retired through the epoch domain so helpers
// holding raw pointers never dereference reused storage. The only edit:
// a `retires` counter on the two retire() sites, so the bench can report
// the reclaimer traffic the production engine no longer generates.
namespace e10_baseline {

using lfrc::dcas::cell;
using lfrc::dcas::is_clean_value;
using lfrc::dcas::is_mcas;
using lfrc::dcas::is_rdcss;
using lfrc::dcas::tag_mask;
using lfrc::dcas::tag_mcas;
using lfrc::dcas::tag_rdcss;

class engine {
  public:
    static const char* name() noexcept { return "alloc+retire"; }

    struct counters {
        std::atomic<std::uint64_t> retires{0};  // descriptor retire() calls
    };
    static counters& stats() noexcept {
        static counters c;
        return c;
    }

    static std::uint64_t read(cell& c) {
        lfrc::reclaim::epoch_domain::guard g(domain());
        return read_pinned(c);
    }

    static constexpr std::size_t max_casn = 4;

    struct casn_op {
        cell* target;
        std::uint64_t expected;
        std::uint64_t desired;
    };

    static bool casn(casn_op* ops, std::size_t n) {
        assert(n >= 1 && n <= max_casn);
        lfrc::reclaim::epoch_domain::guard g(domain());
        auto* d = ::new (mcas_pool::allocate()) mcas_descriptor;
        d->entry_count = static_cast<std::uint32_t>(n);
        for (std::size_t i = 0; i < n; ++i) {
            assert(is_clean_value(ops[i].expected) && is_clean_value(ops[i].desired));
            d->entries[i] = {ops[i].target, ops[i].expected, ops[i].desired};
        }
        for (std::uint32_t i = 1; i < d->entry_count; ++i) {
            auto key = d->entries[i];
            std::uint32_t j = i;
            for (; j > 0 && key.addr < d->entries[j - 1].addr; --j) {
                d->entries[j] = d->entries[j - 1];
            }
            d->entries[j] = key;
        }
        const bool ok = mcas_help(d, /*is_owner=*/true);
        stats().retires.fetch_add(1, std::memory_order_relaxed);
        domain().retire(d, [](void* p) { mcas_pool::deallocate(p); });
        return ok;
    }

  private:
    enum : std::uint64_t {
        status_undecided = 0,
        status_succeeded = 1,
        status_failed = 2,
    };

    struct mcas_descriptor {
        struct entry {
            cell* addr;
            std::uint64_t old_val;
            std::uint64_t new_val;
        };
        std::atomic<std::uint64_t> status{status_undecided};
        std::uint32_t entry_count = 0;
        entry entries[4] = {};
    };

    struct rdcss_descriptor {
        mcas_descriptor* md;  // control: proceed only while md->status is UNDECIDED
        cell* a2;
        std::uint64_t o2;  // expected data value; n2 is the tagged md
    };

    static_assert(sizeof(mcas_descriptor) <= 112, "mcas_pool block size too small");
    static_assert(sizeof(rdcss_descriptor) <= 24, "rdcss_pool block size too small");

    static lfrc::reclaim::epoch_domain& domain() {
        return lfrc::reclaim::epoch_domain::global();
    }

    // Untracked type-stable pools with a thread-local front cache; backing
    // pools intentionally leaked (epoch deleters can run at static
    // destruction).
    template <std::size_t Size>
    class cached_pool {
      public:
        static void* allocate() {
            auto& cache = local_cache();
            if (!cache.items.empty()) {
                void* p = cache.items.back();
                cache.items.pop_back();
                return p;
            }
            return backing().allocate();
        }
        static void deallocate(void* p) noexcept {
            auto& cache = local_cache();
            if (cache.items.size() < 256) {
                cache.items.push_back(p);
            } else {
                backing().deallocate(p);
            }
        }

      private:
        struct cache_t {
            std::vector<void*> items;
            ~cache_t() {
                for (void* p : items) backing().deallocate(p);
            }
        };
        static cache_t& local_cache() {
            thread_local cache_t cache;
            return cache;
        }
        static lfrc::alloc::block_pool<Size>& backing() {
            static auto* pool = new lfrc::alloc::block_pool<Size>{/*track_stats=*/false};
            return *pool;
        }
    };

    using mcas_pool = cached_pool<112>;
    using rdcss_pool = cached_pool<24>;

    static std::uint64_t tag(const rdcss_descriptor* d) noexcept {
        return reinterpret_cast<std::uint64_t>(d) | tag_rdcss;
    }
    static std::uint64_t tag(const mcas_descriptor* d) noexcept {
        return reinterpret_cast<std::uint64_t>(d) | tag_mcas;
    }
    static rdcss_descriptor* untag_rdcss(std::uint64_t v) noexcept {
        return reinterpret_cast<rdcss_descriptor*>(v & ~tag_mask);
    }
    static mcas_descriptor* untag_mcas(std::uint64_t v) noexcept {
        return reinterpret_cast<mcas_descriptor*>(v & ~tag_mask);
    }

    static void resolve(std::uint64_t observed) {
        if (is_rdcss(observed)) {
            rdcss_complete(untag_rdcss(observed));
        } else {
            mcas_help(untag_mcas(observed), /*is_owner=*/false);
        }
    }

    static std::uint64_t read_pinned(cell& c) {
        for (;;) {
            const std::uint64_t v = c.raw().load(std::memory_order_seq_cst);
            if (!is_rdcss(v) && !is_mcas(v)) return v;
            resolve(v);
        }
    }

    static void rdcss_complete(rdcss_descriptor* rd) {
        const std::uint64_t s = rd->md->status.load(std::memory_order_seq_cst);
        const std::uint64_t desired = (s == status_undecided) ? tag(rd->md) : rd->o2;
        std::uint64_t expected = tag(rd);
        rd->a2->raw().compare_exchange_strong(expected, desired,
                                              std::memory_order_seq_cst);
    }

    static std::uint64_t rdcss_install(rdcss_descriptor* rd) {
        for (;;) {
            std::uint64_t expected = rd->o2;
            if (rd->a2->raw().compare_exchange_strong(expected, tag(rd),
                                                      std::memory_order_seq_cst)) {
                rdcss_complete(rd);
                return rd->o2;
            }
            if (is_rdcss(expected)) {
                rdcss_complete(untag_rdcss(expected));
                continue;
            }
            return expected;
        }
    }

    static bool mcas_help(mcas_descriptor* d, bool is_owner) {
        if (d->status.load(std::memory_order_seq_cst) == status_undecided) {
            std::uint64_t decided = status_succeeded;
            for (std::uint32_t i = 0; i < d->entry_count; ++i) {
                auto& e = d->entries[i];
                bool entry_done = false;
                while (!entry_done) {
                    auto* rd = ::new (rdcss_pool::allocate())
                        rdcss_descriptor{d, e.addr, e.old_val};
                    const std::uint64_t v = rdcss_install(rd);
                    stats().retires.fetch_add(1, std::memory_order_relaxed);
                    domain().retire(rd, [](void* p) { rdcss_pool::deallocate(p); });
                    if (v == e.old_val || v == tag(d)) {
                        entry_done = true;
                    } else if (is_mcas(v)) {
                        mcas_help(untag_mcas(v), /*is_owner=*/false);
                    } else {
                        decided = status_failed;
                        entry_done = true;
                    }
                }
                if (decided == status_failed) break;
                if (d->status.load(std::memory_order_seq_cst) != status_undecided) break;
            }
            std::uint64_t expected = status_undecided;
            d->status.compare_exchange_strong(expected, decided,
                                              std::memory_order_seq_cst);
        }
        const bool succeeded =
            d->status.load(std::memory_order_seq_cst) == status_succeeded;
        for (std::uint32_t i = 0; i < d->entry_count; ++i) {
            auto& e = d->entries[i];
            std::uint64_t expected = tag(d);
            e.addr->raw().compare_exchange_strong(
                expected, succeeded ? e.new_val : e.old_val, std::memory_order_seq_cst);
        }
        (void)is_owner;
        return succeeded;
    }
};

}  // namespace e10_baseline

// ---------------------------------------------------------------------------

using namespace lfrc;

namespace {

// The production engine under its bench-facing alias.
struct reuse_engine {
    static const char* name() noexcept { return "reuse"; }
    using casn_op = dcas::mcas_engine::casn_op;
    static std::uint64_t read(dcas::cell& c) { return dcas::mcas_engine::read(c); }
    static bool casn(casn_op* ops, std::size_t n) {
        return dcas::mcas_engine::casn(ops, n);
    }
};

constexpr std::size_t k_cells = 64;

struct run_row {
    int threads;
    std::string engine;
    double mops2;           // casn(2) attempts per second
    double mops3;           // casn(3) attempts per second
    std::uint64_t retired;  // descriptor retire() calls during both runs
    std::uint64_t pending_delta;  // epoch-domain backlog growth (reuse: must be 0)
};

template <class Engine>
double run_width(std::size_t width, int threads, double duration) {
    // Shared cell array, uniformly random distinct targets: essentially
    // uncontended at 1 thread, moderately contended (with helping) at 8.
    std::vector<util::padded<dcas::cell>> cells(k_cells);
    const auto result = util::run_for(threads, duration, [&](int t) {
        auto& rng = util::thread_rng();
        (void)t;
        std::size_t idx[4];
        for (std::size_t i = 0; i < width; ++i) {
            for (;;) {
                idx[i] = static_cast<std::size_t>(rng() % k_cells);
                bool dup = false;
                for (std::size_t j = 0; j < i; ++j) dup |= (idx[j] == idx[i]);
                if (!dup) break;
            }
        }
        typename Engine::casn_op ops[4];
        for (std::size_t i = 0; i < width; ++i) {
            const auto v = Engine::read(*cells[idx[i]]);
            ops[i] = {&*cells[idx[i]], v, dcas::encode_count(dcas::decode_count(v) + 1)};
        }
        Engine::casn(ops, width);  // one attempt per iteration; may fail under contention
    });
    return result.mops_per_sec();
}

template <class Engine>
std::uint64_t retire_count();
template <>
std::uint64_t retire_count<e10_baseline::engine>() {
    return e10_baseline::engine::stats().retires.load(std::memory_order_relaxed);
}
template <>
std::uint64_t retire_count<reuse_engine>() {
    return 0;  // structurally no retire() call sites; cross-checked below
}

template <class Engine>
run_row run_engine(int threads, double duration) {
    const std::uint64_t retires_before = retire_count<Engine>();
    const std::uint64_t pending_before = reclaim::epoch_domain::global().pending();
    run_row row;
    row.threads = threads;
    row.engine = Engine::name();
    row.mops2 = run_width<Engine>(2, threads, duration);
    row.mops3 = run_width<Engine>(3, threads, duration);
    row.retired = retire_count<Engine>() - retires_before;
    const std::uint64_t pending_after = reclaim::epoch_domain::global().pending();
    row.pending_delta =
        pending_after > pending_before ? pending_after - pending_before : 0;
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const double duration = flags.get_double("duration", 0.4);
    const int max_threads = static_cast<int>(flags.get_u64("max_threads", 8));

    std::printf("E10: software CASN, permanent sequence-tagged descriptors (reuse)\n"
                "vs pool-allocate + epoch-retire (the engine it replaced);\n"
                "%zu shared cells, random distinct targets, duration/cell=%.2fs\n\n",
                k_cells, duration);

    std::vector<run_row> rows;
    util::table table(
        {"threads", "engine", "casn(2) Mops/s", "casn(3) Mops/s", "retired", "pending+"});
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        for (int which = 0; which < 2; ++which) {
            const run_row row = which == 0
                                    ? run_engine<e10_baseline::engine>(threads, duration)
                                    : run_engine<reuse_engine>(threads, duration);
            table.add_row({std::to_string(row.threads), row.engine,
                           util::table::fmt(row.mops2), util::table::fmt(row.mops3),
                           std::to_string(row.retired),
                           std::to_string(row.pending_delta)});
            rows.push_back(row);
        }
    }
    table.print();

    std::printf("\nshape check: reuse should lead at every thread count (no pool\n"
                "round-trips, no epoch pin, no retire bookkeeping per op) and its\n"
                "`retired` and `pending+` columns must both be zero — the reclaimer\n"
                "is out of the CASN loop entirely. The baseline's `retired` column\n"
                "is the per-op descriptor traffic the rework deleted (~1 mcas +\n"
                ">=N rdcss per casn(N)).\n");

    bool ok = true;
    for (const run_row& r : rows) {
        if (r.engine == std::string("reuse") && (r.retired != 0 || r.pending_delta != 0)) {
            std::fprintf(stderr, "E10: reuse engine leaked reclaimer traffic "
                                 "(retired=%llu pending+=%llu) at %d threads\n",
                         static_cast<unsigned long long>(r.retired),
                         static_cast<unsigned long long>(r.pending_delta), r.threads);
            ok = false;
        }
    }

    const std::string json_path = flags.get_string("json", "");
    if (!json_path.empty()) {
        std::FILE* f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "E10: cannot open %s for writing\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"e10_casn\",\n  \"cells\": %zu,\n"
                        "  \"duration_per_cell_sec\": %.3f,\n  \"rows\": [\n",
                     k_cells, duration);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const run_row& r = rows[i];
            std::fprintf(f,
                         "    {\"threads\": %d, \"engine\": \"%s\", \"casn2_mops\": %.3f, "
                         "\"casn3_mops\": %.3f, \"retired\": %llu, \"pending_delta\": %llu}%s\n",
                         r.threads, r.engine.c_str(), r.mops2, r.mops3,
                         static_cast<unsigned long long>(r.retired),
                         static_cast<unsigned long long>(r.pending_delta),
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return ok ? 0 : 1;
}
