// Experiment E5 — LFRC vs other reclamation schemes on classic lock-free
// structures (DESIGN.md §6).
//
// Paper context (§6 related work): LFRC competes with epoch-style deferred
// reclamation and hazard-pointer-style protection. Same algorithms (Treiber
// stack, Michael-Scott queue), five memory regimes:
//   lfrc/mcas, lfrc/locked : counted pointers, GC-independent
//   ebr                    : epoch-based retire-on-unlink
//   hp                     : hazard pointers
//   leaky                  : free nothing (upper bound)
//
// Expected shape: leaky > ebr > hp > lfrc/locked > lfrc/mcas on throughput —
// LFRC pays two shared RMWs per pointer *read*, which is the documented cost
// of counting (and what E6 isolates); its compensation is immediate,
// GC-independent reclamation and freedom from type-stable pools.
//
//   --duration=0.4 --max_threads=4
#include <cstdio>
#include <memory>
#include <string>

#include "containers/gc_containers.hpp"
#include "containers/ms_queue.hpp"
#include "gc/heap.hpp"
#include "containers/reclaim_queue.hpp"
#include "containers/reclaim_stack.hpp"
#include "containers/treiber_stack.hpp"
#include "lfrc/lfrc.hpp"
#include "util/bench_support.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

template <typename Stack>
double stack_throughput(int threads, double duration) {
    Stack st;
    for (int i = 0; i < 128; ++i) st.push(i);
    const auto result = util::run_for(threads, duration, [&](int) {
        if (util::thread_rng().below(2) == 0) {
            st.push(1);
        } else {
            st.pop();
        }
    });
    while (st.pop()) {}
    return result.mops_per_sec();
}

double gc_stack_throughput(int threads, double duration) {
    gc::heap heap{1 << 20};
    containers::gc_stack<std::int64_t> st{heap};
    {
        gc::heap::attach_scope attach(heap);
        for (int i = 0; i < 128; ++i) st.push(i);
    }
    const auto result = util::run_for(threads, duration, [&](int) {
        thread_local gc::heap* attached_heap = nullptr;
        thread_local std::unique_ptr<gc::heap::attach_scope> attach;
        if (attached_heap != &heap) {
            attach = std::make_unique<gc::heap::attach_scope>(heap);
            attached_heap = &heap;
        }
        if (util::thread_rng().below(2) == 0) {
            st.push(1);
        } else {
            st.pop();
        }
    });
    {
        gc::heap::attach_scope attach(heap);
        while (st.pop()) {}
        heap.collect_now();
    }
    return result.mops_per_sec();
}

double gc_queue_throughput(int threads, double duration) {
    gc::heap heap{1 << 20};
    containers::gc_queue<std::int64_t> q{heap};
    {
        gc::heap::attach_scope attach(heap);
        for (int i = 0; i < 128; ++i) q.enqueue(i);
    }
    const auto result = util::run_for(threads, duration, [&](int) {
        thread_local gc::heap* attached_heap = nullptr;
        thread_local std::unique_ptr<gc::heap::attach_scope> attach;
        if (attached_heap != &heap) {
            attach = std::make_unique<gc::heap::attach_scope>(heap);
            attached_heap = &heap;
        }
        if (util::thread_rng().below(2) == 0) {
            q.enqueue(1);
        } else {
            q.dequeue();
        }
    });
    {
        gc::heap::attach_scope attach(heap);
        while (q.dequeue()) {}
        heap.collect_now();
    }
    return result.mops_per_sec();
}

template <typename Queue>
double queue_throughput(int threads, double duration) {
    Queue q;
    for (int i = 0; i < 128; ++i) q.enqueue(i);
    const auto result = util::run_for(threads, duration, [&](int) {
        if (util::thread_rng().below(2) == 0) {
            q.enqueue(1);
        } else {
            q.dequeue();
        }
    });
    while (q.dequeue()) {}
    return result.mops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const double duration = flags.get_double("duration", 0.4);
    const int max_threads = static_cast<int>(flags.get_u64("max_threads", 4));

    std::printf("E5: stack/queue throughput by reclamation scheme (Mops/s), "
                "50/50 mix, duration/cell=%.2fs\n\n",
                duration);

    util::table table({"structure", "threads", "lfrc/mcas", "lfrc/locked", "ebr", "hp",
                       "leaky", "gc-stw"});
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        table.add_row(
            {"treiber-stack", std::to_string(threads),
             util::table::fmt(stack_throughput<
                              containers::treiber_stack<domain, std::int64_t>>(
                 threads, duration)),
             util::table::fmt(stack_throughput<
                              containers::treiber_stack<locked_domain, std::int64_t>>(
                 threads, duration)),
             util::table::fmt(
                 stack_throughput<containers::reclaim_stack<std::int64_t,
                                                            smr::ebr<>>>(
                     threads, duration)),
             util::table::fmt(
                 stack_throughput<containers::reclaim_stack<std::int64_t,
                                                            smr::hp<>>>(
                     threads, duration)),
             util::table::fmt(
                 stack_throughput<containers::reclaim_stack<std::int64_t,
                                                            smr::leaky<>>>(
                     threads, duration)),
             util::table::fmt(gc_stack_throughput(threads, duration))});
        flush_deferred_frees();
    }
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        table.add_row(
            {"ms-queue", std::to_string(threads),
             util::table::fmt(
                 queue_throughput<containers::ms_queue<domain, std::int64_t>>(threads,
                                                                              duration)),
             util::table::fmt(queue_throughput<
                              containers::ms_queue<locked_domain, std::int64_t>>(
                 threads, duration)),
             util::table::fmt(
                 queue_throughput<containers::reclaim_queue<std::int64_t,
                                                            smr::ebr<>>>(
                     threads, duration)),
             util::table::fmt(
                 queue_throughput<containers::reclaim_queue<std::int64_t,
                                                            smr::hp<>>>(
                     threads, duration)),
             util::table::fmt(
                 queue_throughput<containers::reclaim_queue<std::int64_t,
                                                            smr::leaky<>>>(
                     threads, duration)),
             util::table::fmt(gc_queue_throughput(threads, duration))});
        flush_deferred_frees();
    }
    table.print();

    reclaim::hazard_domain::global().drain_all();
    const auto counters = domain::counters().snapshot();
    std::printf("\nsanity: lfrc objects leaked = %lld\n",
                static_cast<long long>(counters.objects_created) -
                    static_cast<long long>(counters.objects_destroyed));
    return 0;
}
