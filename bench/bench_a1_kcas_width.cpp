// Ablation A1 — cost of the software multi-word CAS as a function of width.
//
// The paper argues for *hardware* DCAS; a natural question is how the
// software emulation's cost scales with the number of words, since the
// descriptor protocol does one RDCSS install + one unroll CAS per word.
// Expected shape: ~linear in N on top of a fixed descriptor overhead, i.e.
// casn(2) is not much worse than half of casn(4).
//
//   --duration=0.4 --max_threads=2
#include <cstdio>
#include <string>
#include <vector>

#include "dcas/cell.hpp"
#include "dcas/mcas_engine.hpp"
#include "util/bench_support.hpp"
#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

double run_width(std::size_t width, int threads, double duration) {
    // One private group of cells per thread: protocol cost, no contention.
    struct group {
        util::padded<dcas::cell> cells[4];
    };
    std::vector<group> groups(static_cast<std::size_t>(threads));
    const auto result = util::run_for(threads, duration, [&](int t) {
        auto& g = groups[static_cast<std::size_t>(t)];
        dcas::mcas_engine::casn_op ops[4];
        for (std::size_t i = 0; i < width; ++i) {
            const auto v = dcas::mcas_engine::read(*g.cells[i]);
            ops[i] = {&*g.cells[i], v,
                      dcas::encode_count(dcas::decode_count(v) + 1)};
        }
        dcas::mcas_engine::casn(ops, width);
    });
    return result.mops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const double duration = flags.get_double("duration", 0.4);
    const int max_threads = static_cast<int>(flags.get_u64("max_threads", 2));

    std::printf("A1: software CASN throughput by width (Mops/s), uncontended, "
                "duration/cell=%.2fs\n\n",
                duration);

    util::table table({"threads", "casn(1)=cas", "casn(2)=dcas", "casn(3)", "casn(4)",
                       "ns/word @1T-equiv"});
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        const double w1 = run_width(1, threads, duration);
        const double w2 = run_width(2, threads, duration);
        const double w3 = run_width(3, threads, duration);
        const double w4 = run_width(4, threads, duration);
        const double ns_per_word =
            w4 > 0 ? 1000.0 / (w4 * 4.0) : 0;  // rough per-word cost at width 4
        table.add_row({std::to_string(threads), util::table::fmt(w1),
                       util::table::fmt(w2), util::table::fmt(w3), util::table::fmt(w4),
                       util::table::fmt(ns_per_word, 0)});
    }
    table.print();
    std::printf("\nshape check: throughput falls ~1/N past the width-1 fast path; the\n"
                "per-word cost is roughly flat (linear protocol).\n");
    return 0;
}
