// Experiment E3 — DCAS emulation cost and contention behaviour, plus the
// locked-vs-lock-free ablation (DESIGN.md §6).
//
// Paper context (§1): the paper *assumes* hardware DCAS and argues stronger
// primitives are worth providing. This experiment quantifies what the
// assumption costs in software: the blocking striped-lock emulation versus
// the lock-free RDCSS/MCAS emulation, on disjoint cell pairs (no logical
// contention) and on one shared pair (maximum contention).
//
// Expected shape: locked wins uncontended (two uncontended spinlocks beat
// descriptor traffic); under contention the gap narrows — and on multicore
// with preemption the lock-free engine avoids the blocked-lock-holder
// stalls that the locked engine suffers. Helping counters are reported.
//
//   --duration=0.5 --max_threads=4
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dcas/cell.hpp"
#include "dcas/locked_engine.hpp"
#include "dcas/mcas_engine.hpp"
#include "util/bench_support.hpp"
#include "util/cacheline.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

// One cache line per cell so "disjoint" really is disjoint.
struct cell_pair {
    util::padded<dcas::cell> a;
    util::padded<dcas::cell> b;
};

template <typename Engine>
double run_disjoint(int threads, double duration) {
    // One private pair per thread: pure protocol cost, no contention.
    std::vector<std::unique_ptr<cell_pair>> pairs;
    for (int t = 0; t < threads; ++t) pairs.push_back(std::make_unique<cell_pair>());
    const auto result = util::run_for(threads, duration, [&](int t) {
        auto& pair = *pairs[static_cast<std::size_t>(t)];
        const auto va = Engine::read(*pair.a);
        const auto vb = Engine::read(*pair.b);
        Engine::dcas(*pair.a, *pair.b, va, vb,
                     dcas::encode_count(dcas::decode_count(va) + 1),
                     dcas::encode_count(dcas::decode_count(vb) + 1));
    });
    return result.mops_per_sec();
}

template <typename Engine>
double run_contended(int threads, double duration) {
    cell_pair pair;
    const auto result = util::run_for(threads, duration, [&](int) {
        const auto va = Engine::read(*pair.a);
        const auto vb = Engine::read(*pair.b);
        Engine::dcas(*pair.a, *pair.b, va, vb,
                     dcas::encode_count(dcas::decode_count(va) + 1),
                     dcas::encode_count(dcas::decode_count(vb) + 1));
    });
    return result.mops_per_sec();
}

volatile std::uint64_t g_sink;
inline void benchmark_read(std::uint64_t v) { g_sink = v; }

template <typename Engine>
double run_read_heavy(int threads, double duration) {
    // 90% single-cell reads, 10% DCAS: the LFRC op mix shape.
    cell_pair pair;
    const auto result = util::run_for(threads, duration, [&](int) {
        auto& rng = util::thread_rng();
        if (rng.below(10) != 0) {
            benchmark_read(Engine::read(*pair.a));
        } else {
            const auto va = Engine::read(*pair.a);
            const auto vb = Engine::read(*pair.b);
            Engine::dcas(*pair.a, *pair.b, va, vb, va, vb);
        }
    });
    return result.mops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const double duration = flags.get_double("duration", 0.4);
    const int max_threads = static_cast<int>(flags.get_u64("max_threads", 4));

    std::printf("E3: DCAS engine throughput (Mops/s), duration/cell=%.2fs\n\n", duration);

    const auto helps_before = dcas::mcas_engine::stats().helps.load();

    util::table table({"workload", "threads", "locked", "mcas", "locked/mcas"});
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        const double l = run_disjoint<dcas::locked_engine>(threads, duration);
        const double m = run_disjoint<dcas::mcas_engine>(threads, duration);
        table.add_row({"disjoint-pairs", std::to_string(threads), util::table::fmt(l),
                       util::table::fmt(m), util::table::fmt(m > 0 ? l / m : 0, 1) + "x"});
    }
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        const double l = run_contended<dcas::locked_engine>(threads, duration);
        const double m = run_contended<dcas::mcas_engine>(threads, duration);
        table.add_row({"same-pair", std::to_string(threads), util::table::fmt(l),
                       util::table::fmt(m), util::table::fmt(m > 0 ? l / m : 0, 1) + "x"});
    }
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        const double l = run_read_heavy<dcas::locked_engine>(threads, duration);
        const double m = run_read_heavy<dcas::mcas_engine>(threads, duration);
        table.add_row({"90%-read-mix", std::to_string(threads), util::table::fmt(l),
                       util::table::fmt(m), util::table::fmt(m > 0 ? l / m : 0, 1) + "x"});
    }
    table.print();

    std::printf("\nmcas helping events during run: %llu "
                "(descriptor completions by non-owners)\n",
                static_cast<unsigned long long>(dcas::mcas_engine::stats().helps.load() -
                                                helps_before));
    return 0;
}
