// Experiment E1 — deque throughput across implementations (DESIGN.md §6).
//
// Paper claim (§4): the LFRC-transformed Snark is a working lock-free,
// GC-independent deque. This harness measures a mixed workload (random end,
// 50/50 push/pop) across thread counts for:
//   snark+lfrc/mcas    GC-independent, fully lock-free DCAS emulation
//   snark+lfrc/locked  GC-independent, blocking DCAS emulation
//   snark+gc-stw       GC-dependent original under the toy collector
//   mutex+std::deque   the "just use a lock" baseline
//
// Expected shape: all lock-free variants sustain throughput as threads grow
// (on real multicore they scale; on this single-core container they hold
// roughly steady), the GC variant pays collection time, and the mutex deque
// is fastest uncontended but degrades under contention.
//
//   --duration=0.5 --max_threads=4
#include <cstdio>
#include <string>

#include "gc/heap.hpp"
#include "lfrc/lfrc.hpp"
#include "snark/mutex_deque.hpp"
#include "snark/snark_gc.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/bench_support.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

template <typename Deque>
double throughput(Deque& dq, int threads, double duration) {
    // Pre-fill so pops usually succeed.
    for (int i = 0; i < 256; ++i) dq.push_right(i);
    const auto result = util::run_for(threads, duration, [&](int t) {
        auto& rng = util::thread_rng();
        (void)t;
        switch (rng.below(4)) {
            case 0: dq.push_left(1); break;
            case 1: dq.push_right(1); break;
            case 2: dq.pop_left(); break;
            default: dq.pop_right(); break;
        }
    });
    while (dq.pop_left()) {}
    return result.mops_per_sec();
}

// The GC deque needs attach/safepoint plumbing around the same workload.
double throughput_gc(int threads, double duration) {
    gc::heap heap{1 << 20};
    snark::snark_deque_gc<std::int64_t> dq{heap};
    {
        gc::heap::attach_scope attach(heap);
        for (int i = 0; i < 256; ++i) dq.push_right(i);
    }
    const auto result = util::run_for(threads, duration, [&](int) {
        thread_local gc::heap* attached_heap = nullptr;
        thread_local std::unique_ptr<gc::heap::attach_scope> attach;
        if (attached_heap != &heap) {
            attach = std::make_unique<gc::heap::attach_scope>(heap);
            attached_heap = &heap;
        }
        auto& rng = util::thread_rng();
        switch (rng.below(4)) {
            case 0: dq.push_left(1); break;
            case 1: dq.push_right(1); break;
            case 2: dq.pop_left(); break;
            default: dq.pop_right(); break;
        }
    });
    // Worker threads exit inside run_for; their attach_scopes unwound with
    // the thread_locals. Drain at quiescence.
    {
        gc::heap::attach_scope attach(heap);
        while (dq.pop_left()) {}
        heap.collect_now();
    }
    return result.mops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const double duration = flags.get_double("duration", 0.5);
    const int max_threads = static_cast<int>(flags.get_u64("max_threads", 4));

    std::printf("E1: Snark deque throughput, mixed push/pop both ends (Mops/s)\n");
    std::printf("    duration/cell=%.2fs   NOTE: single-core hosts show flat-to-\n"
                "    declining scaling for all variants; relative order is the result.\n\n",
                duration);

    util::table table({"threads", "lfrc/mcas", "lfrc/locked", "gc-stw", "mutex"});
    for (int threads = 1; threads <= max_threads; threads *= 2) {
        std::string row_mcas, row_locked, row_gc, row_mutex;
        {
            snark::snark_deque<domain, std::int64_t> dq;
            row_mcas = util::table::fmt(throughput(dq, threads, duration));
        }
        {
            snark::snark_deque<locked_domain, std::int64_t> dq;
            row_locked = util::table::fmt(throughput(dq, threads, duration));
        }
        row_gc = util::table::fmt(throughput_gc(threads, duration));
        {
            snark::mutex_deque<std::int64_t> dq;
            row_mutex = util::table::fmt(throughput(dq, threads, duration));
        }
        table.add_row({std::to_string(threads), row_mcas, row_locked, row_gc, row_mutex});
        flush_deferred_frees();
    }
    table.print();

    const auto counters = domain::counters().snapshot();
    std::printf("\nsanity: lfrc objects leaked = %lld\n",
                static_cast<long long>(counters.objects_created) -
                    static_cast<long long>(counters.objects_destroyed));
    return 0;
}
