// Experiment E8 — stop-the-world pauses vs LFRC's pause-free reclamation
// (DESIGN.md §6).
//
// Paper claim (§1): GC environments "employ excessive synchronization, such
// as locking and/or stop-the-world mechanisms"; LFRC's goal is the
// simplicity of GC "without having to use locks or stop-the-world
// techniques".
//
// Identical mixed deque workload on the GC-dependent Snark (toy STW
// collector, allocation-triggered collections) and the LFRC Snark; per-op
// latency percentiles plus the collector's own pause histogram.
//
// Expected shape: comparable medians, but the GC run's p99.9/max explode by
// the collection pause (which grows with live heap), while LFRC's tail stays
// scheduler-bound. The collector's reported max pause should roughly match
// the GC run's worst op stall.
//
//   --threads=2 --ops=40000 --gc_threshold_kb=256
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gc/heap.hpp"
#include "lfrc/lfrc.hpp"
#include "snark/snark_gc.hpp"
#include "snark/snark_lfrc.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/spin_barrier.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace lfrc;

namespace {

void add_row(util::table& t, const std::string& name,
             const util::latency_histogram& h) {
    t.add_row({name, util::table::fmt(h.mean(), 0), std::to_string(h.percentile(0.50)),
               std::to_string(h.percentile(0.99)), std::to_string(h.percentile(0.999)),
               std::to_string(h.max())});
}

template <typename Op>
util::latency_histogram measure(int threads, int ops, Op&& per_thread_op) {
    std::vector<util::latency_histogram> hists(static_cast<std::size_t>(threads));
    util::spin_barrier barrier{static_cast<std::size_t>(threads)};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            per_thread_op(t, barrier, hists[static_cast<std::size_t>(t)], ops);
        });
    }
    for (auto& th : pool) th.join();
    util::latency_histogram merged;
    for (auto& h : hists) merged.merge(h);
    return merged;
}

}  // namespace

int main(int argc, char** argv) {
    util::cli_flags flags(argc, argv);
    const int threads = static_cast<int>(flags.get_u64("threads", 2));
    const int ops = static_cast<int>(flags.get_u64("ops", 40000));
    const std::size_t gc_threshold =
        static_cast<std::size_t>(flags.get_u64("gc_threshold_kb", 256)) * 1024;

    std::printf("E8: per-op latency under STW GC vs LFRC (%d threads, %d ops/thread)\n\n",
                threads, ops);

    util::table table({"deque", "mean ns", "p50 ns", "p99 ns", "p99.9 ns", "max ns"});

    gc::heap heap{gc_threshold};
    {
        snark::snark_deque_gc<std::int64_t> dq{heap};
        const auto hist = measure(
            threads, ops,
            [&](int t, util::spin_barrier& barrier, util::latency_histogram& h, int n) {
                gc::heap::attach_scope attach(heap);
                util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
                barrier.arrive_and_wait();
                for (int i = 0; i < n; ++i) {
                    util::stopwatch sw;
                    if (rng.below(2) == 0) {
                        dq.push_right(i);
                    } else {
                        dq.pop_left();
                    }
                    h.record(sw.elapsed_ns() + 1);
                }
            });
        add_row(table, "snark+gc-stw", hist);
    }

    {
        snark::snark_deque<locked_domain, std::int64_t> dq;
        const auto hist = measure(
            threads, ops,
            [&](int t, util::spin_barrier& barrier, util::latency_histogram& h, int n) {
                util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
                barrier.arrive_and_wait();
                for (int i = 0; i < n; ++i) {
                    util::stopwatch sw;
                    if (rng.below(2) == 0) {
                        dq.push_right(i);
                    } else {
                        dq.pop_left();
                    }
                    h.record(sw.elapsed_ns() + 1);
                }
            });
        add_row(table, "snark+lfrc/locked", hist);
    }
    {
        snark::snark_deque<domain, std::int64_t> dq;
        const auto hist = measure(
            threads, ops,
            [&](int t, util::spin_barrier& barrier, util::latency_histogram& h, int n) {
                util::xoshiro256 rng{static_cast<std::uint64_t>(t) + 1};
                barrier.arrive_and_wait();
                for (int i = 0; i < n; ++i) {
                    util::stopwatch sw;
                    if (rng.below(2) == 0) {
                        dq.push_right(i);
                    } else {
                        dq.pop_left();
                    }
                    h.record(sw.elapsed_ns() + 1);
                }
            });
        add_row(table, "snark+lfrc/mcas", hist);
    }
    table.print();

    const auto gc_stats = heap.stats();
    std::printf("\ncollector: %llu collections, pause p50=%llu ns, p99=%llu ns, "
                "max=%llu ns\n",
                static_cast<unsigned long long>(gc_stats.collections),
                static_cast<unsigned long long>(gc_stats.pauses.percentile(0.5)),
                static_cast<unsigned long long>(gc_stats.pauses.percentile(0.99)),
                static_cast<unsigned long long>(gc_stats.max_pause_ns));
    std::printf("LFRC performs no collections; its tail latency is scheduler noise\n"
                "plus (for mcas) DCAS-emulation retries.\n");

    // Second table: the STW pause is a full mark-sweep, so it grows with the
    // LIVE heap regardless of allocation rate — the structural reason LFRC's
    // incremental reclamation wins on tail latency as heaps grow.
    std::printf("\npause scaling with live heap (single mutator, one forced "
                "collection over N live nodes):\n\n");
    util::table pause_table({"live nodes", "pause us", "us per 10k nodes"});
    for (std::uint64_t live = 10'000; live <= 1'000'000; live *= 10) {
        gc::heap sized_heap{~std::size_t{0} >> 1};  // never auto-collect
        snark::snark_deque_gc<std::int64_t> dq{sized_heap};
        gc::heap::attach_scope attach(sized_heap);
        for (std::uint64_t i = 0; i < live; ++i) {
            dq.push_right(static_cast<std::int64_t>(i));
        }
        util::stopwatch pause_clock;
        sized_heap.collect_now();
        const double us = static_cast<double>(pause_clock.elapsed_ns()) / 1000.0;
        pause_table.add_row({std::to_string(live), util::table::fmt(us, 1),
                             util::table::fmt(us / (static_cast<double>(live) / 10'000.0), 1)});
        while (dq.pop_left()) {}
    }
    pause_table.print();
    std::printf("\nshape check: pause grows ~linearly with live data; per-10k-node\n"
                "cost is ~flat. LFRC has no analogous term.\n");
    lfrc::flush_deferred_frees();
    return 0;
}
