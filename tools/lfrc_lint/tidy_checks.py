"""clang-tidy-style AST checks for lfrc_lint (`lfrc_lint.py --tidy`).

These are the R1/R4 legs that genuinely benefit from type resolution,
re-expressed as named checks over the libclang AST — the ROADMAP's
"clang-tidy checks" carry-over. Where the lexer frontend matches member
*names* against the link-field set, these checks resolve the *declared
type* of the receiver and the *dynamic class* of new/delete expressions,
so a raw `std::atomic<T*>` cell hidden behind an alias or a node type
new'd through a typedef is still caught.

Checks (diagnostics use clang-tidy's `file:line:col: warning: ... [name]`
format so editor integrations parse them natively):

  lfrc-node-raw-atomic-cell   a node_base/counted-derived record declares a
                              raw std::atomic<T*> field (R1a, by type)
  lfrc-node-raw-atomic-op     load/store/CAS/RMW called on such a field
                              (R1b, receiver resolved through the AST)
  lfrc-node-arena-bypass      new/delete of a policy-managed node type that
                              is not the counted_base arena seam (R4, the
                              allocated type resolved through the AST)

The same escape hatches as the lexer rules apply (`quiescent`,
`arena-route`, `exempt(Rn)`) — hatch words are read from the source lines,
so one annotation satisfies both frontends.

Like clang_frontend.py, this module is opportunistic: missing bindings or
a failed parse degrade to a one-line notice and exit 0, unless
--require-clang demands the AST path (exit 2). It never replaces the
always-on lexer rules; it is a second, higher-precision opinion for
toolchains that carry libclang python bindings.
"""

from __future__ import annotations

import os
import sys

import clang_frontend
from cpp_model import ANNOTATION_RE

CXX_EXTS = (".hpp", ".h", ".cpp", ".cc", ".cxx")

ATOMIC_MEMBER_OPS = (
    "load", "store", "exchange", "compare_exchange_weak",
    "compare_exchange_strong", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor",
)

MANAGED_BASE_MARKS = ("node_base", "::object", "counted_base")


def _collect_files(root: str, paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                for f in sorted(filenames):
                    if f.endswith(CXX_EXTS):
                        files.append(os.path.join(dirpath, f))
        else:
            print(f"lfrc_lint --tidy: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def _annotation_words(text: str) -> dict[int, set[str]]:
    """line -> lfrc-lint hatch words, read straight off the raw source so
    the AST checks honor the same annotations as the lexer rules."""
    words: dict[int, set[str]] = {}
    for i, line in enumerate(text.splitlines(), start=1):
        m = ANNOTATION_RE.search(line)
        if m:
            ws = {w.strip() for w in m.group(1).split(",") if w.strip()}
            words.setdefault(i, set()).update(ws)
    return words


def _annotated(words: dict[int, set[str]], line: int, want: str) -> bool:
    for at in (line, line - 1):
        if want in words.get(at, set()):
            return True
    return False


def _exempt(words: dict[int, set[str]], line: int, rule: str) -> bool:
    for at in (line, line - 1):
        for w in words.get(at, set()):
            if w.startswith("exempt(") and rule in w:
                return True
    return False


def _compile_args(ci, compdb_dir: str | None, path: str) -> list[str]:
    args = ["-std=c++20", "-xc++"]
    if not compdb_dir:
        return args
    try:
        comp_db = ci.CompilationDatabase.fromDirectory(compdb_dir)
        cmds = comp_db.getCompileCommands(path)
        if not cmds:
            return args
        out: list[str] = []
        it = iter(list(cmds)[0].arguments)
        next(it, None)  # compiler argv[0]
        for a in it:
            if a == "-o":
                next(it, None)
                continue
            if a == "-c" or a.endswith((".cpp", ".cc", ".cxx", ".hpp", ".h")):
                continue
            out.append(a)
        return out or args
    except Exception:
        return args


def check_file(path: str, relpath: str, compdb_dir: str | None):
    """Returns a list of (line, col, message, check) or None on parse/
    binding failure (caller notices the degrade)."""
    try:
        import clang.cindex as ci
    except Exception:
        return None
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        words = _annotation_words(text)
        index = ci.Index.create()
        tu = index.parse(path, args=_compile_args(ci, compdb_dir, path))
    except Exception:
        return None

    diags: list[tuple[int, int, str, str]] = []

    def is_managed_record(record) -> bool:
        try:
            for c in record.get_children():
                if c.kind == ci.CursorKind.CXX_BASE_SPECIFIER:
                    spelling = c.type.spelling
                    if any(m in spelling for m in MANAGED_BASE_MARKS):
                        return True
                    base = c.type.get_declaration()
                    if base is not None and base.is_definition() and \
                            is_managed_record(base):
                        return True
        except Exception:
            return False
        return False

    def is_atomic_ptr(t) -> bool:
        s = t.get_canonical().spelling
        return s.startswith("std::atomic<") and "*" in s

    atomic_cells: set[str] = set()
    managed_records: set[str] = set()

    def visit(cursor):
        if cursor.kind in (ci.CursorKind.STRUCT_DECL,
                           ci.CursorKind.CLASS_DECL) and \
                cursor.is_definition() and is_managed_record(cursor):
            managed_records.add(cursor.type.get_canonical().spelling)
            for f in cursor.get_children():
                if f.kind == ci.CursorKind.FIELD_DECL and \
                        is_atomic_ptr(f.type):
                    line = f.location.line
                    if not _annotated(words, line, "quiescent") and \
                            not _exempt(words, line, "R1"):
                        atomic_cells.add(f.get_usr())
                        diags.append((
                            line, f.location.column,
                            f"managed node '{cursor.spelling}' declares raw "
                            f"atomic pointer cell '{f.spelling}' "
                            f"({f.type.spelling}); use a policy link/vslot "
                            f"field", "lfrc-node-raw-atomic-cell"))

        if cursor.kind == ci.CursorKind.CALL_EXPR and \
                cursor.spelling in ATOMIC_MEMBER_OPS:
            for ch in cursor.get_children():
                if ch.kind == ci.CursorKind.MEMBER_REF_EXPR:
                    ref = ch.referenced
                    if ref is not None and ref.get_usr() in atomic_cells:
                        line = cursor.location.line
                        if not _annotated(words, line, "quiescent") and \
                                not _exempt(words, line, "R1"):
                            diags.append((
                                line, cursor.location.column,
                                f"raw atomic {cursor.spelling}() on a "
                                f"managed node cell; route through "
                                f"guard/protect and cas_link/dcas_link_flag",
                                "lfrc-node-raw-atomic-op"))

        if cursor.kind in (ci.CursorKind.CXX_NEW_EXPR,
                           ci.CursorKind.CXX_DELETE_EXPR):
            try:
                t = cursor.type
                if cursor.kind == ci.CursorKind.CXX_NEW_EXPR:
                    pointee = t.get_pointee()
                else:
                    arg = next(cursor.get_children(), None)
                    pointee = arg.type.get_pointee() if arg is not None else None
                decl = pointee.get_declaration() if pointee is not None else None
                spelling = (pointee.get_canonical().spelling
                            if pointee is not None else "")
            except Exception:
                decl, spelling = None, ""
            managed = spelling in managed_records or \
                (decl is not None and decl.is_definition() and
                 is_managed_record(decl))
            if managed:
                line = cursor.location.line
                fn = cursor.semantic_parent
                fname = fn.spelling if fn is not None else ""
                what = ("new" if cursor.kind == ci.CursorKind.CXX_NEW_EXPR
                        else "delete")
                if fname != "smr_dispose" and \
                        not _annotated(words, line, "arena-route") and \
                        not _exempt(words, line, "R4"):
                    diags.append((
                        line, cursor.location.column,
                        f"direct {what} of policy-managed node type "
                        f"'{spelling}' bypasses the counted_base arena "
                        f"seam; use make_owner/retire_unlinked (annotate "
                        f"'lfrc-lint: arena-route' only at the seam itself)",
                        "lfrc-node-arena-bypass"))

        for ch in cursor.get_children():
            if ch.location.file and ch.location.file.name == path:
                visit(ch)

    try:
        visit(tu.cursor)
    except Exception:
        return None
    return diags


def main(root: str, paths: list[str], compdb_dir: str | None,
         require_clang: bool = False) -> int:
    if not clang_frontend.available():
        msg = ("lfrc_lint --tidy: libclang python bindings unavailable — "
               "AST checks skipped")
        if require_clang:
            print(msg + " (--require-clang)", file=sys.stderr)
            return 2
        print(msg + " (opportunistic; --require-clang to fail hard)",
              file=sys.stderr)
        return 0
    files = _collect_files(root, paths)
    total = 0
    degraded = 0
    for path in files:
        relpath = os.path.relpath(path, root)
        diags = check_file(path, relpath, compdb_dir)
        if diags is None:
            degraded += 1
            if require_clang:
                print(f"lfrc_lint --tidy: parse failed for {relpath} and "
                      f"--require-clang is set", file=sys.stderr)
                return 2
            continue
        for line, col, message, check in diags:
            print(f"{relpath}:{line}:{col}: warning: {message} [{check}]")
            total += 1
    note = f", {degraded} file(s) skipped (parse failure)" if degraded else ""
    print(f"lfrc_lint --tidy: {len(files)} file(s), "
          f"{total} diagnostic(s){note}")
    return 1 if total else 0


if __name__ == "__main__":
    print("run via: lfrc_lint.py --tidy [PATHS]", file=sys.stderr)
    sys.exit(2)
