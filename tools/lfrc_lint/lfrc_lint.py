#!/usr/bin/env python3
"""lfrc_lint — static LFRC-compliance checker for this repository.

The paper's transformation (GC-dependent lock-free structure -> LFRC) is
only sound for *LFRC-compliant* code: shared pointers touched exclusively
through the load/store/copy/destroy/CAS/DCAS operation set, which this
repo expresses as the lfrc::smr policy/guard seam. This tool mechanically
enforces that discipline — and, since v2, the internal disciplines the
engines themselves depend on — via a small analysis core (analysis.py:
per-function CFGs, a call graph, fixed-point escape summaries):

  R1  no raw read/write/CAS on shared node pointer cells — all access via
      policy link/guard operations
  R2  guard discipline: protect/traverse results must not escape their
      guard's scope, tracked interprocedurally through arbitrary call
      depth (returns, member stores, helper chains)
  R3  retire-once: retire_unlinked must be CFG-dominated by the success
      edge of an unlink CAS/DCAS (or annotated with a proof)
  R4  no direct new/delete of policy-managed node types (owner/make_owner
      and reset_chain/smr_dispose own allocation and teardown)
  R5  smr_children completeness: every link/vslot member enumerated, flags
      never enumerated, smr_link_count consistent (the compile-time trait
      smr::detail::children_cover_all_links_v mirrors this in-template)
  R6  memory-order discipline: every non-seq_cst atomic op in src/smr,
      src/dcas, src/alloc, src/reclaim, src/net carries
      '// lfrc-lint: order(<key>)' naming its pairing; keys resolve to
      >= 2 sites per run (--order-table emits the fence-pairing artifact)
  R7  descriptor-sequence discipline (reuse engine): per-use descriptor
      reads re-validated against the sequence, decision CAS carries it

Frontends: libclang over compile_commands.json when the toolchain provides
python bindings (R1 type resolution on the real AST); a self-contained
lexer/block-tree fallback otherwise, so the check ALWAYS runs. A silent
AST degrade is reported once per run; --require-clang turns it into a
hard failure for CI cells that need the AST path. --tidy runs the
clang-tidy-style R1/R4 AST checks (tidy_checks.py) over the same compdb.

Usage:
  lfrc_lint.py --root REPO [PATHS...]       lint paths (default: src)
  lfrc_lint.py --root REPO --self-test      run the fixture corpus
  lfrc_lint.py --root REPO --sarif OUT ...  also write SARIF 2.1.0
  lfrc_lint.py --root REPO --order-table OUT src   fence-pairing table
  lfrc_lint.py --root REPO --tidy [PATHS]   clang-tidy-style AST checks
  lfrc_lint.py --list-rules
Exit codes: 0 clean, 1 findings (or fixture expectation mismatch), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import clang_frontend  # noqa: E402
from cpp_model import SourceModel  # noqa: E402
from rules import (  # noqa: E402
    RULES, Finding, OrderSite, order_pairing_findings, order_table,
    run_rules,
)

CXX_EXTS = (".hpp", ".h", ".cpp", ".cc", ".cxx")

RULE_DOC = {
    "R1": "no raw atomic access to shared node cells outside policy internals",
    "R2": "guard-protected pointers must not escape the guard's scope "
          "(interprocedural, fixed-point over the call graph)",
    "R3": "retire_unlinked must be CFG-dominated by an unlink-CAS success edge",
    "R4": "no direct new/delete of policy-managed node types",
    "R5": "smr_children enumerates exactly the link/vslot members (+ smr_link_count)",
    "R6": "non-seq_cst atomic ops carry order(<pairing>) annotations that "
          "resolve to a counterpart site",
    "R7": "pooled-descriptor reads re-validated against the sequence; "
          "decision CAS carries it",
}

_degrade_noticed = False


def _notice_degrade(path: str, require_clang: bool):
    """The clang frontend returning None used to be silent; surface it."""
    global _degrade_noticed
    if require_clang:
        print(f"lfrc_lint: libclang frontend failed on {path} and "
              f"--require-clang is set", file=sys.stderr)
        sys.exit(2)
    if not _degrade_noticed:
        print(f"lfrc_lint: note: libclang parse failed for {path} — "
              f"falling back to the lexer frontend for R1 "
              f"(--require-clang to fail hard)", file=sys.stderr)
        _degrade_noticed = True


def collect_files(root: str, paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                for f in sorted(filenames):
                    if f.endswith(CXX_EXTS):
                        files.append(os.path.join(dirpath, f))
        else:
            print(f"lfrc_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def lint_file(root: str, path: str, use_clang: bool,
              compdb_dir: str | None,
              require_clang: bool = False
              ) -> tuple[list[Finding], list[OrderSite]]:
    relpath = os.path.relpath(path, root)
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    model = SourceModel(relpath, text)
    rules = RULES
    findings: list[Finding] = []
    if use_clang and compdb_dir:
        ast_r1 = clang_frontend.check_r1_ast(path, relpath, compdb_dir)
        if ast_r1 is not None:
            findings.extend(ast_r1)
            rules = tuple(r for r in RULES if r != "R1")
        else:
            _notice_degrade(relpath, require_clang)
    fallback, sites = run_rules(model, relpath, rules)
    findings.extend(fallback)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings, sites


def write_sarif(out_path: str, findings: list[Finding]):
    """SARIF 2.1.0 for the analysis CI cell / code-scanning consumers."""
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "lfrc_lint",
                "informationUri": "tools/lfrc_lint/README.md",
                "rules": [{"id": r,
                           "shortDescription": {"text": RULE_DOC[r]}}
                          for r in RULES],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.path.replace(os.sep, "/")},
                    "region": {"startLine": f.line},
                }}],
            } for f in findings],
        }],
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(sarif, fh, indent=2)
        fh.write("\n")


def self_test(root: str, use_clang: bool, compdb_dir: str | None) -> int:
    """Fixture corpus: every `lint-expect: Rn` marker in a fixture must be
    matched by a finding of that rule within 2 lines, every finding must be
    claimed by a marker, and *_good fixtures must be perfectly clean. R6
    pairing resolution runs per fixture file, so each fixture is a
    self-contained lint run."""
    fixtures_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "fixtures")
    files = collect_files(fixtures_dir, ["."])
    if not files:
        print("lfrc_lint: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    checked = 0
    flagged = 0
    for path in sorted(files):
        relpath = os.path.relpath(path, root)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        model = SourceModel(relpath, text)
        findings, sites = lint_file(root, path, use_clang, compdb_dir)
        findings = sorted(findings + order_pairing_findings(sites),
                          key=lambda f: (f.line, f.rule))
        expected = []  # (line, rule)
        for line, rls in sorted(model.expectations.items()):
            expected.extend((line, r) for r in rls)
        unmatched_exp = list(expected)
        unclaimed = []
        for f in findings:
            hit = None
            for e in unmatched_exp:
                if e[1] == f.rule and abs(e[0] - f.line) <= 2:
                    hit = e
                    break
            if hit is not None:
                unmatched_exp.remove(hit)
            else:
                unclaimed.append(f)
        checked += 1
        flagged += len(expected) - len(unmatched_exp)
        name = os.path.basename(path)
        if unmatched_exp or unclaimed:
            failures += 1
            print(f"FIXTURE FAIL {name}")
            for line, rule in unmatched_exp:
                print(f"  expected {rule} near {relpath}:{line} — not flagged")
            for f in unclaimed:
                print(f"  unexpected: {f.render()}")
        else:
            verdict = "flags" if expected else "clean"
            print(f"fixture ok   {name:40s} "
                  f"({verdict} {len(expected) or ''}".rstrip() + ")")
    print(f"\nself-test: {checked} fixtures, {flagged} seeded violations "
          f"flagged, {failures} failure(s)")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="lfrc_lint", add_help=True)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs relative to --root (default: src)")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus instead of linting paths")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json "
                         "(default: <root>/build if present)")
    ap.add_argument("--require-clang", action="store_true",
                    help="fail (exit 2) instead of silently degrading when "
                         "the libclang frontend is unavailable or errors")
    ap.add_argument("--sarif", metavar="OUT", default=None,
                    help="also write findings as SARIF 2.1.0 to OUT")
    ap.add_argument("--order-table", metavar="OUT", default=None,
                    help="write the R6 fence-pairing table (markdown) to "
                         "OUT ('-' for stdout)")
    ap.add_argument("--tidy", action="store_true",
                    help="run the clang-tidy-style R1/R4 AST checks "
                         "(tidy_checks.py; opportunistic unless "
                         "--require-clang)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r}  {RULE_DOC[r]}")
        return 0

    root = os.path.abspath(args.root)
    compdb_dir = args.compdb
    if compdb_dir is None:
        cand = os.path.join(root, "build")
        if os.path.isfile(os.path.join(cand, "compile_commands.json")):
            compdb_dir = cand

    if args.tidy:
        import tidy_checks
        return tidy_checks.main(root, args.paths or ["src"], compdb_dir,
                                require_clang=args.require_clang)

    if (args.frontend == "clang" or args.require_clang) \
            and not clang_frontend.available():
        print("lfrc_lint: libclang python bindings are unavailable "
              "(--frontend=clang / --require-clang)", file=sys.stderr)
        return 2
    use_clang = args.frontend != "fallback" and clang_frontend.available()
    frontend = "libclang" if (use_clang and compdb_dir) else "fallback parser"

    if args.self_test:
        print(f"lfrc_lint self-test (frontend: {frontend})")
        return self_test(root, use_clang, compdb_dir)

    paths = args.paths or ["src"]
    files = collect_files(root, paths)
    all_findings: list[Finding] = []
    all_sites: list[OrderSite] = []
    for path in files:
        findings, sites = lint_file(root, path, use_clang, compdb_dir,
                                    require_clang=args.require_clang)
        all_findings.extend(findings)
        all_sites.extend(sites)
    all_findings.extend(order_pairing_findings(all_sites))
    for f in all_findings:
        print(f.render())
    if args.sarif:
        write_sarif(args.sarif, all_findings)
    if args.order_table:
        table = order_table(all_sites)
        if args.order_table == "-":
            sys.stdout.write(table)
        else:
            with open(args.order_table, "w", encoding="utf-8") as fh:
                fh.write(table)
    tag = "clean" if not all_findings else f"{len(all_findings)} finding(s)"
    print(f"lfrc_lint: {len(files)} file(s), {tag} (frontend: {frontend}, "
          f"{len(all_sites)} order-annotated sites)")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
