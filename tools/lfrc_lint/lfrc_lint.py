#!/usr/bin/env python3
"""lfrc_lint — static LFRC-compliance checker for this repository.

The paper's transformation (GC-dependent lock-free structure -> LFRC) is
only sound for *LFRC-compliant* code: shared pointers touched exclusively
through the load/store/copy/destroy/CAS/DCAS operation set, which this
repo expresses as the lfrc::smr policy/guard seam. This tool mechanically
enforces that discipline over client code (containers, store, snark, the
net front-end, fixtures):

  R1  no raw read/write/CAS on shared node pointer cells — all access via
      policy link/guard operations
  R2  guard discipline: protect/traverse results must not escape their
      guard's scope (return / member store) without an upgrade
  R3  retire-once: retire_unlinked only from unlink-winner branches
      (structurally dominated by a successful CAS/DCAS, or annotated)
  R4  no direct new/delete of policy-managed node types (owner/make_owner
      and reset_chain/smr_dispose own allocation and teardown)
  R5  smr_children completeness: every link/vslot member enumerated, flags
      never enumerated, smr_link_count consistent (the compile-time trait
      smr::detail::children_cover_all_links_v mirrors this in-template)

Frontends: libclang over compile_commands.json when the toolchain provides
python bindings (R1 type resolution on the real AST); a self-contained
lexer/block-tree fallback otherwise, so the check ALWAYS runs.

Usage:
  lfrc_lint.py --root REPO [PATHS...]       lint paths (default: src)
  lfrc_lint.py --root REPO --self-test      run the fixture corpus
  lfrc_lint.py --list-rules
Exit codes: 0 clean, 1 findings (or fixture expectation mismatch), 2 usage.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import clang_frontend  # noqa: E402
from cpp_model import SourceModel  # noqa: E402
from rules import RULES, Finding, run_rules  # noqa: E402

CXX_EXTS = (".hpp", ".h", ".cpp", ".cc", ".cxx")

RULE_DOC = {
    "R1": "no raw atomic access to shared node cells outside policy internals",
    "R2": "guard-protected pointers must not escape the guard's scope",
    "R3": "retire_unlinked only from unlink-winner (success-dominated) branches",
    "R4": "no direct new/delete of policy-managed node types",
    "R5": "smr_children enumerates exactly the link/vslot members (+ smr_link_count)",
}


def collect_files(root: str, paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                for f in sorted(filenames):
                    if f.endswith(CXX_EXTS):
                        files.append(os.path.join(dirpath, f))
        else:
            print(f"lfrc_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def lint_file(root: str, path: str, use_clang: bool,
              compdb_dir: str | None) -> list[Finding]:
    relpath = os.path.relpath(path, root)
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    model = SourceModel(relpath, text)
    rules = RULES
    findings: list[Finding] = []
    if use_clang and compdb_dir:
        ast_r1 = clang_frontend.check_r1_ast(path, relpath, compdb_dir)
        if ast_r1 is not None:
            findings.extend(ast_r1)
            rules = tuple(r for r in RULES if r != "R1")
    findings.extend(run_rules(model, relpath, rules))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def self_test(root: str, use_clang: bool, compdb_dir: str | None) -> int:
    """Fixture corpus: every `lint-expect: Rn` marker in a fixture must be
    matched by a finding of that rule within 2 lines, every finding must be
    claimed by a marker, and *_good fixtures must be perfectly clean."""
    fixtures_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "fixtures")
    files = collect_files(fixtures_dir, ["."])
    if not files:
        print("lfrc_lint: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    checked = 0
    flagged = 0
    for path in sorted(files):
        relpath = os.path.relpath(path, root)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        model = SourceModel(relpath, text)
        findings = lint_file(root, path, use_clang, compdb_dir)
        expected = []  # (line, rule)
        for line, rls in sorted(model.expectations.items()):
            expected.extend((line, r) for r in rls)
        unmatched_exp = list(expected)
        unclaimed = []
        for f in findings:
            hit = None
            for e in unmatched_exp:
                if e[1] == f.rule and abs(e[0] - f.line) <= 2:
                    hit = e
                    break
            if hit is not None:
                unmatched_exp.remove(hit)
            else:
                unclaimed.append(f)
        checked += 1
        flagged += len(expected) - len(unmatched_exp)
        name = os.path.basename(path)
        if unmatched_exp or unclaimed:
            failures += 1
            print(f"FIXTURE FAIL {name}")
            for line, rule in unmatched_exp:
                print(f"  expected {rule} near {relpath}:{line} — not flagged")
            for f in unclaimed:
                print(f"  unexpected: {f.render()}")
        else:
            verdict = "flags" if expected else "clean"
            print(f"fixture ok   {name:40s} "
                  f"({verdict} {len(expected) or ''}".rstrip() + ")")
    print(f"\nself-test: {checked} fixtures, {flagged} seeded violations "
          f"flagged, {failures} failure(s)")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="lfrc_lint", add_help=True)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs relative to --root (default: src)")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus instead of linting paths")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json "
                         "(default: <root>/build if present)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r}  {RULE_DOC[r]}")
        return 0

    root = os.path.abspath(args.root)
    compdb_dir = args.compdb
    if compdb_dir is None:
        cand = os.path.join(root, "build")
        if os.path.isfile(os.path.join(cand, "compile_commands.json")):
            compdb_dir = cand

    if args.frontend == "clang" and not clang_frontend.available():
        print("lfrc_lint: --frontend=clang requested but python libclang "
              "bindings are unavailable", file=sys.stderr)
        return 2
    use_clang = args.frontend != "fallback" and clang_frontend.available()
    frontend = "libclang" if (use_clang and compdb_dir) else "fallback parser"

    if args.self_test:
        print(f"lfrc_lint self-test (frontend: {frontend})")
        return self_test(root, use_clang, compdb_dir)

    paths = args.paths or ["src"]
    files = collect_files(root, paths)
    all_findings: list[Finding] = []
    for path in files:
        all_findings.extend(lint_file(root, path, use_clang, compdb_dir))
    for f in all_findings:
        print(f.render())
    tag = "clean" if not all_findings else f"{len(all_findings)} finding(s)"
    print(f"lfrc_lint: {len(files)} file(s), {tag} (frontend: {frontend})")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
