"""lfrc_lint rules R1-R7: the paper's Section-3 LFRC-compliance
preconditions, as mechanical checks over a SourceModel (+ the CFG /
call-graph analyses in analysis.py).

Scope model
-----------
The LFRC/SMR seam splits the tree into two zones:

  policy internals   src/smr, src/dcas + the machinery they are built on
                     (src/lfrc, src/reclaim, src/gc, src/alloc, src/sim,
                     src/util). Raw cells, atomics and new/delete are the
                     *implementation* of the discipline here.
  client code        src/containers, src/store, src/snark, src/net,
                     examples and the fixture corpus. Every shared-pointer
                     access must go through policy/guard operations (the
                     paper's load/store/copy/destroy/CAS/DCAS set); rules
                     R1-R5 enforce exactly that. src/net is the canonical
                     long-lived-object client: connections outlive the
                     per-tick guards that protect store entries, so R2's
                     escape analysis is the rule that matters most there
                     (fixtures/r2_net_conn_*.hpp).

Two rules audit the *internals* themselves:

  R6 (memory-order discipline)  every non-seq_cst atomic op in src/smr,
                     src/dcas, src/alloc, src/reclaim, src/net must carry
                     `// lfrc-lint: order(<pairing>)` naming the release/
                     acquire (or fence) site it pairs with; pairing keys
                     must resolve to >= 2 annotated sites per lint run
                     (cross-file), except keys prefixed `unpaired-` (owner-
                     only or counter sites with no ordering partner).
  R7 (descriptor-sequence discipline)  in the reuse CASN engine, reads of a
                     pooled descriptor's per-use fields must be re-validated
                     against the descriptor sequence before acting, and the
                     decision CAS must carry the sequence (the Arbel-Raviv &
                     Brown invariant DESIGN.md §13 proves).

Escape hatches are explicit and greppable:
  // lfrc-lint: unlink-winner      R3 — call site IS the unlink winner
  // lfrc-lint: escape-ok          R2 — pointer escape reviewed by hand
  // lfrc-lint: quiescent          R1 — exclusive-access phase (ctor/dtor/
                                   single-owner accessor)
  // lfrc-lint: arena-route        R4 — policy-internal new/delete that IS
                                   the owner seam: the expression resolves
                                   to alloc::counted_base operator
                                   new/delete, i.e. the arena route itself
  // lfrc-lint: order(<key>)       R6 — names this op's pairing site/fence
  // lfrc-lint: seq-owner          R7 — descriptor read in owner context
                                   (the sequence cannot advance under us)
  // lfrc-lint: seq-carried        R7 — the acting CAS compares against the
                                   sequence-tagged descriptor word itself
  // lfrc-lint: exempt(Rn)         any rule, with the rule named
Each hatch suppresses one line; none are wildcards over a file.

A file outside the policy directories can opt into a zone with a
file-scope pragma (used by the fixture corpus, which lives under tools/
rather than src/):
  // lfrc-lint-scope: policy-internal
  // lfrc-lint-scope: order-audited       (R6 applies)
  // lfrc-lint-scope: descriptor-engine   (R7 applies)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import analysis
from analysis import STORE_LHS, balanced_args, split_top_level
from cpp_model import Block, ClassInfo, SourceModel

POLICY_INTERNAL_DIRS = (
    "src/smr/", "src/dcas/", "src/lfrc/", "src/reclaim/",
    "src/gc/", "src/alloc/", "src/sim/", "src/util/",
)

# R6's audit set: the directories whose relaxed/acquire/release choices are
# load-bearing for the reclamation protocols (DESIGN.md §16).
ORDER_AUDITED_DIRS = (
    "src/smr/", "src/dcas/", "src/alloc/", "src/reclaim/", "src/net/",
)

RULES = ("R1", "R2", "R3", "R4", "R5", "R6", "R7")

LINK_TYPE_RE = re.compile(r"(?:\b|::)(link|ptr_field|cell_link)\s*<")
VSLOT_TYPE_RE = re.compile(r"(?:\b|::)(vslot|ll_field|cell_vslot)\s*<")
FLAG_TYPE_RE = re.compile(r"(?:\b|::)(flag|flag_field|cell_flag)\b")
ATOMIC_PTR_RE = re.compile(r"std\s*::\s*atomic\s*<[^;{}()]*\*")
NODE_BASE_RE = re.compile(r"\bnode_base\s*<")

ATOMIC_OP_RE = re.compile(
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(load|store|exchange|compare_exchange_weak|compare_exchange_strong|"
    r"fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor)\s*\("
)
RAW_CELL_RE = re.compile(r"(?:\.|->)\s*(raw|cell|ptr_cell|version_cell)\s*\(\s*\)")
EXCLUSIVE_RE = re.compile(r"(?:\.|->)\s*(exclusive_get|exclusive_set)\s*\(")

# Unlink-winning ops for R3 dominance: the link/flag CAS family plus the
# CASN erase claim (vclaim_mark_dead), whose success likewise means this
# thread — and only this thread — took the entry out of the structure.
# The CFG lowering (analysis.py) owns the success-edge placement.
CAS_OP_NAMES = analysis.CAS_OP_NAMES
CAS_OP_RE = re.compile(r"\b(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead)\s*\(")

GUARD_DECL_RE = re.compile(r"\bguard\b\s+([A-Za-z_]\w*)\s*[({]")
GUARD_PARAM_RE = re.compile(r"\bguard\s*&\s*([A-Za-z_]\w*)")
PROTECT_CALL = ("protect", "traverse", "vprotect", "vtraverse")

NEW_EXPR_RE = re.compile(r"(?<![:\w])new\b(?!\s*\()")
DELETE_EXPR_RE = re.compile(r"(?<![:\w])delete\b")

SMR_LINK_COUNT_RE = re.compile(
    r"\bsmr_link_count\s*=\s*(\d+)"
)
FCALL_RE = re.compile(r"(?<![\w.>])%s\s*\(\s*(?:[\w.\->]*?(?:\.|->))?([A-Za-z_]\w*)\s*\)")

# R6 machinery.
ORDER_TOKEN_RE = re.compile(
    r"\bmemory_order_(relaxed|acquire|release|acq_rel|consume)\b")
ORDER_KEY_RE = re.compile(r"^order\(\s*([a-z0-9\-]+)\s*\)$")
UNPAIRED_PREFIX = "unpaired-"

# R7 machinery.
SEQ_VALIDATE_RE = re.compile(r"\b(desc_seq_of|seq_of_status|read_status)\s*\(")
DESC_CLASS_RE = re.compile(r"_descriptor$")
# Fields that name the identity/arbitration words rather than per-use
# payload: reading these IS the validation protocol, not subject to it.
DESC_CONTROL_FIELD_RE = re.compile(r"seq|status")
STATUS_CAS_LOOKBACK = 400  # chars of same-statement context for the decision CAS


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class OrderSite:
    """One R6-annotated non-seq_cst atomic op."""
    key: str
    path: str
    line: int
    snippet: str


SCOPE_PRAGMA_RE = re.compile(r"lfrc-lint-scope:\s*policy-internal")
ORDER_SCOPE_RE = re.compile(r"lfrc-lint-scope:\s*order-audited")
DESC_SCOPE_RE = re.compile(r"lfrc-lint-scope:\s*descriptor-engine")


def is_policy_internal(relpath: str, model: SourceModel | None = None) -> bool:
    p = relpath.replace("\\", "/")
    if any(p.startswith(d) or f"/{d}" in p for d in POLICY_INTERNAL_DIRS):
        return True
    return model is not None and bool(SCOPE_PRAGMA_RE.search(model.text))


def is_order_audited(relpath: str, model: SourceModel | None = None) -> bool:
    p = relpath.replace("\\", "/")
    if any(p.startswith(d) or f"/{d}" in p for d in ORDER_AUDITED_DIRS):
        return True
    return model is not None and bool(ORDER_SCOPE_RE.search(model.text))


def is_descriptor_engine(relpath: str, model: SourceModel | None = None) -> bool:
    p = relpath.replace("\\", "/")
    if p.startswith("src/dcas/") or "/src/dcas/" in p:
        return True
    return model is not None and bool(DESC_SCOPE_RE.search(model.text))


def is_managed_node(ci: ClassInfo) -> bool:
    """A node class whose shared fields the policy layer owns: it derives
    from a policy node_base (or the counted Domain::object) or enumerates
    smr_children."""
    if NODE_BASE_RE.search(ci.bases or ""):
        return True
    if re.search(r"::object\b|counted_base\b", ci.bases or ""):
        return True
    return "smr_children" in ci.methods


def link_members(ci: ClassInfo):
    links, vslots = [], []
    for m in ci.members:
        if LINK_TYPE_RE.search(m.type_text):
            links.append(m)
        elif VSLOT_TYPE_RE.search(m.type_text):
            vslots.append(m)
    return links, vslots


class RuleContext:
    def __init__(self, model: SourceModel, relpath: str):
        self.model = model
        self.relpath = relpath
        self.findings: list[Finding] = []
        self.order_sites: list[OrderSite] = []
        self.managed = [c for c in model.classes if is_managed_node(c)]
        # Member names through which shared pointers flow (R1's cell set).
        self.link_member_names: set[str] = set()
        for ci in self.managed:
            ls, vs = link_members(ci)
            self.link_member_names.update(m.name for m in ls)
            self.link_member_names.update(m.name for m in vs)
            for m in ci.members:
                if ATOMIC_PTR_RE.search(m.type_text):
                    self.link_member_names.add(m.name)

    def report(self, rule: str, off_or_line: int, message: str, *, is_line=False):
        line = off_or_line if is_line else self.model.line_of(off_or_line)
        if self.model.exempt(line, rule):
            return
        self.findings.append(Finding(rule, self.relpath, line, message))


# ---- R1: no raw atomic access to shared node cells -----------------------

def check_r1(ctx: RuleContext):
    model = ctx.model
    if is_policy_internal(ctx.relpath, model):
        return

    # (a) managed node classes must use policy field types, not raw atomics.
    for ci in ctx.managed:
        for m in ci.members:
            if ATOMIC_PTR_RE.search(m.type_text):
                ctx.report(
                    "R1", m.line,
                    f"managed node '{ci.name}' declares raw atomic pointer "
                    f"cell '{m.name}' ({m.type_text}); shared links must be "
                    f"policy link/vslot fields so every access routes "
                    f"through load/store/CAS/DCAS", is_line=True)

    # (b) no direct atomic op through a link-typed / atomic-ptr member.
    for m in ATOMIC_OP_RE.finditer(model.stripped):
        recv, op = m.group(1), m.group(2)
        segs = re.split(r"\s*(?:\.|->)\s*", recv)
        if segs and segs[-1] in ctx.link_member_names:
            line = model.line_of(m.start())
            if model.annotated(line, "quiescent"):
                continue
            ctx.report(
                "R1", m.start(),
                f"raw atomic {op}() on shared link '{recv}' — use the "
                f"policy's guard/protect and cas_link/dcas_link_flag ops")

    # (c) reaching under a policy field for its cell is the same violation.
    for m in RAW_CELL_RE.finditer(model.stripped):
        line = model.line_of(m.start())
        if model.annotated(line, "quiescent"):
            continue
        ctx.report(
            "R1", m.start(),
            f".{m.group(1)}() unwraps a policy field's raw cell outside "
            f"policy internals")

    # (d) exclusive_get/exclusive_set are single-owner-phase ops: allowed
    # only in ctors/dtors, smr_dispose, tracing adapters, or annotated
    # quiescent accessors.
    for m in EXCLUSIVE_RE.finditer(model.stripped):
        line = model.line_of(m.start())
        if model.annotated(line, "quiescent"):
            continue
        fn = model.enclosing_function(m.start())
        fname = ""
        if fn is not None:
            nm = re.search(r"([~A-Za-z_]\w*)\s*\(", fn.header)
            fname = nm.group(1) if nm else ""
        if fname in ("smr_dispose", "lfrc_visit_children", "gc_trace",
                     "reset_chain") or fname.startswith("~"):
            continue
        ctx.report(
            "R1", m.start(),
            f"{m.group(1)}() outside an exclusive-access phase (annotate "
            f"'lfrc-lint: quiescent' if single-owner access is proven)")


# ---- R2: protected pointers must not escape their guard ------------------
#
# Interprocedural since v2: analysis.escape_summaries closes the per-file
# call graph under a fixed point, so a guard-protected pointer is tracked
# through arbitrary call depth — `top(p)` calling `mid(p)` calling
# `leaf(p) { last_ = p; }` flags at the top-level call site with the full
# chain in the message. Taint also flows through value returns: if `h` is
# protected and `helper` returns its parameter, `auto q = helper(h)` taints
# `q`. Limitations (pinned by fixtures): bare-name call resolution only, and
# a helper that launders its parameter through a local alias before storing
# is not summarized.

def check_r2(ctx: RuleContext):
    model = ctx.model
    if is_policy_internal(ctx.relpath, model):
        return
    summaries = analysis.escape_summaries(model)

    ASSIGN_CALL_RE = re.compile(
        r"\b([A-Za-z_]\w*)\s*=[^=;]*?(?<![\w.>:])([A-Za-z_]\w*)\s*\(")

    def scan_function(fn: Block):
        body = model.block_text(fn)
        base = fn.open_off + 1
        local_guards = set()
        for g in GUARD_DECL_RE.finditer(body):
            # `guard& g` in the header is a caller-owned guard, not local.
            local_guards.add(g.group(1))
        param_guards = {g.group(1) for g in GUARD_PARAM_RE.finditer(fn.header)}
        local_guards -= param_guards
        if not local_guards:
            return

        tainted: set[str] = set()
        for g in sorted(local_guards):
            gcall = re.compile(
                r"\b([A-Za-z_]\w*)\s*=[^=;]*\b" + re.escape(g) +
                r"\s*\.\s*(?:%s)\b" % "|".join(PROTECT_CALL))
            garg = re.compile(
                r"\b([A-Za-z_]\w*)\s*=[^=;]*\([^;]*\b" + re.escape(g) +
                r"\b\s*[,)]")
            binding = re.compile(
                r"auto\s*\[([^\]]+)\]\s*=[^;]*\b" + re.escape(g) + r"\b")
            for m in gcall.finditer(body):
                tainted.add(m.group(1))
            for m in garg.finditer(body):
                tainted.add(m.group(1))
            for m in binding.finditer(body):
                tainted.update(x.strip() for x in m.group(1).split(","))

        # Taint through returning helpers: `q = helper(.., h, ..)` where the
        # summary says helper returns the parameter `h` occupies.
        for _ in range(8):
            grew = False
            for m in ASSIGN_CALL_RE.finditer(body):
                dst, callee = m.group(1), m.group(2)
                if dst in tainted:
                    continue
                summ = summaries.get(callee)
                if not summ:
                    continue
                argtext = balanced_args(body, m.end() - 1)
                if argtext is None:
                    continue
                args = [a.strip() for a in split_top_level(argtext)]
                if any(pe.returns and j < len(args) and args[j] in tainted
                       for j, pe in summ.items()):
                    tainted.add(dst)
                    grew = True
            if not grew:
                break

        for var in sorted(tainted):
            for m in re.finditer(r"\breturn\s+" + re.escape(var) + r"\s*;",
                                 body):
                line = model.line_of(base + m.start())
                if model.annotated(line, "escape-ok"):
                    continue
                ctx.report(
                    "R2", base + m.start(),
                    f"'{var}' was protected by a guard local to this "
                    f"function and escapes via return; the protection dies "
                    f"with the guard (upgrade to an owning reference or "
                    f"take the guard as a parameter)")
            store = re.compile(
                STORE_LHS + r"\s*=\s*" + re.escape(var) + r"\s*;")
            for m in store.finditer(body):
                lhs = m.group(1)
                if lhs in tainted:
                    continue  # pointer-walk within the guard scope
                line = model.line_of(base + m.start())
                if model.annotated(line, "escape-ok"):
                    continue
                ctx.report(
                    "R2", base + m.start(),
                    f"guard-protected '{var}' stored to '{lhs}', outliving "
                    f"its guard scope (escape requires an upgrade to an "
                    f"owning/counted reference)")

        # Interprocedural escape: a tainted pointer passed (bare) to a
        # function whose fixed-point summary stores that parameter, or
        # returns it while this call is itself inside a return statement.
        if tainted:
            return_spans = [(m.start(), m.end())
                            for m in analysis.RETURN_SPAN_RE.finditer(body)]
            for m in analysis.CALL_RE.finditer(body):
                summ = summaries.get(m.group(1))
                if not summ:
                    continue
                argtext = balanced_args(body, m.end() - 1)
                if argtext is None:
                    continue
                args = [a.strip() for a in split_top_level(argtext)]
                in_return = any(a <= m.start() < b for a, b in return_spans)
                for j in sorted(summ):
                    pe = summ[j]
                    if j >= len(args) or args[j] not in tainted:
                        continue
                    if not (pe.stores or (pe.returns and in_return)):
                        continue
                    line = model.line_of(base + m.start())
                    if model.annotated(line, "escape-ok"):
                        continue
                    chain = " -> ".join((m.group(1),) + pe.chain)
                    how = ("stores it beyond the call" if pe.stores
                           else "returns it out of this function")
                    ctx.report(
                        "R2", base + m.start(),
                        f"guard-protected '{args[j]}' passed to "
                        f"'{m.group(1)}', which {how} (escape chain: "
                        f"{chain}) — the pointer outlives its guard scope "
                        f"(upgrade to an owning reference, or pass the "
                        f"guard along)")
                    break  # one finding per call site

    def visit(blk: Block):
        for ch in blk.children:
            if model.is_function_block(ch):
                scan_function(ch)
            visit(ch)

    visit(model.root)


# ---- R3: retire_unlinked only from unlink-winner branches ----------------
#
# v2: real CFG dominance. analysis.build_cfg lowers the enclosing function
# and marks the success edge of every unlink-CAS condition with a synthetic
# cas-success node; a retire site is compliant iff function entry cannot
# reach it once those nodes are deleted. This subsumes the old structural
# forms (positive guard, diverging negated-CAS fall-through) and extends to
# else-arms, nested branches, loops, and early-exit combinations the
# sibling-scan could not see.

def check_r3(ctx: RuleContext):
    model = ctx.model
    if is_policy_internal(ctx.relpath, model):
        return
    cfgs: dict[int, analysis.CFG] = {}
    for m in re.finditer(r"\bretire_unlinked\s*\(", model.stripped):
        # skip declarations/definitions of the op itself
        head = model.stripped[max(0, m.start() - 60):m.start()]
        if re.search(r"\bvoid\s+$", head):
            continue
        line = model.line_of(m.start())
        if model.annotated(line, "unlink-winner"):
            continue
        fn = model.enclosing_function(m.start())
        dominated = False
        if fn is not None:
            cfg = cfgs.get(id(fn))
            if cfg is None:
                cfg = analysis.build_cfg(model, fn)
                cfgs[id(fn)] = cfg
            dominated = analysis.success_dominated(cfg, m.start())
        if dominated:
            continue
        ctx.report(
            "R3", m.start(),
            "retire_unlinked() call site is reachable from function entry "
            "without passing a successful unlink CAS/DCAS (CFG dominance) — "
            "a loser branch retiring means double retire (annotate "
            "'// lfrc-lint: unlink-winner' only with a proof)")


# ---- R4: no new/delete of node types outside owner/policy ----------------
#
# Two legs share one walk:
#   client leg     (original rule) any new/delete in node-managing client
#                  code is a violation — allocation goes through
#                  make_owner/publish_ok, reclamation through
#                  retire_unlinked/reset_chain.
#   internal leg   now that alloc::counted_base routes every node through
#                  lfrc::alloc::arena, `owner` is the ONLY sanctioned
#                  allocation path even inside policy code: a direct
#                  new/delete of a managed node type would bypass the arena
#                  (and its poisoning/accounting). The make_owner / owner
#                  teardown expressions that ARE the seam carry
#                  '// lfrc-lint: arena-route'; anything unannotated is a
#                  bypass.

def check_r4(ctx: RuleContext):
    model = ctx.model
    internal = is_policy_internal(ctx.relpath, model)
    if not ctx.managed:
        return  # no policy-managed nodes here: plain-heap code is out of scope
    for regex, what in ((NEW_EXPR_RE, "new"), (DELETE_EXPR_RE, "delete")):
        for m in regex.finditer(model.stripped):
            if what == "delete":
                before = model.stripped[:m.start()].rstrip()
                if before.endswith("="):
                    continue  # `= delete` declaration syntax
            line = model.line_of(m.start())
            fn = model.enclosing_function(m.start())
            fname = ""
            if fn is not None:
                nm = re.search(r"([~A-Za-z_]\w*)\s*\(", fn.header)
                fname = nm.group(1) if nm else ""
            if fname == "smr_dispose":
                continue  # the policy contract's sanctioned teardown hook
            if internal:
                if model.annotated(line, "arena-route"):
                    continue
                ctx.report(
                    "R4", m.start(),
                    f"direct {what} inside policy-internal node code — node "
                    f"storage must route through alloc::counted_base (the "
                    f"arena seam); annotate '// lfrc-lint: arena-route' only "
                    f"where the expression resolves to counted_base's "
                    f"operator {what}")
            else:
                ctx.report(
                    "R4", m.start(),
                    f"direct {what} in node-managing code — allocation must "
                    f"go through policy make_owner/publish_ok and "
                    f"reclamation through retire_unlinked/reset_chain")


# ---- R5: smr_children completeness ---------------------------------------

def check_r5(ctx: RuleContext):
    model = ctx.model
    for ci in ctx.managed:
        links, vslots = link_members(ci)
        pointer_members = links + vslots
        has_children = "smr_children" in ci.methods

        # Paper-API nodes (snark level) enumerate via the visitor form
        # `lfrc_visit_children(V&) { v.on_child(member.exclusive_get()); }`
        # instead of the functor form. Treat it as the enumeration; the
        # smr_link_count mirror is a policy-seam concept and not required.
        if not has_children and "lfrc_visit_children" in ci.methods:
            vblk = ci.methods["lfrc_visit_children"]
            vbody = model.block_text(vblk)
            enumerated = set()
            for m in re.finditer(
                    r"\bon_child\s*\(\s*(?:[\w.\->]*?(?:\.|->))?"
                    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*exclusive_get\s*\(",
                    vbody):
                enumerated.add(m.group(1))
            for m in pointer_members:
                if m.name not in enumerated:
                    ctx.report(
                        "R5", m.line,
                        f"pointer member '{ci.name}::{m.name}' is missing "
                        f"from lfrc_visit_children — the counted unravel "
                        f"will never visit it (leak / lost child)",
                        is_line=True)
            continue

        if not has_children:
            if pointer_members:
                ctx.report(
                    "R5", ci.line,
                    f"node '{ci.name}' has pointer-bearing fields "
                    f"({', '.join(m.name for m in pointer_members)}) but no "
                    f"smr_children enumeration — tracing policies cannot "
                    f"see its children", is_line=True)
            continue

        blk = ci.methods["smr_children"]
        fm = re.search(r"\(\s*[\w:<>&\s]*?([A-Za-z_]\w*)\s*\)\s*$",
                       blk.header[:blk.header.rfind(")") + 1])
        functor = fm.group(1) if fm else "f"
        body = model.block_text(blk)
        enumerated = set()
        for m in re.finditer(FCALL_RE.pattern % re.escape(functor), body):
            enumerated.add(m.group(1))

        member_names = {m.name for m in pointer_members}
        for m in pointer_members:
            if m.name not in enumerated:
                ctx.report(
                    "R5", m.line,
                    f"pointer member '{ci.name}::{m.name}' is missing from "
                    f"smr_children — counted unravel and gc tracing will "
                    f"never visit it (leak / lost child)", is_line=True)
        for name in sorted(enumerated - member_names):
            flagish = any(m.name == name and FLAG_TYPE_RE.search(m.type_text)
                          for m in ci.members)
            msg = (f"smr_children of '{ci.name}' enumerates '{name}', which "
                   + ("is a flag field (flags hold no pointer and must not "
                      "be traced)" if flagish else
                      "is not a link/vslot member of the class"))
            ctx.report("R5", model.line_of(blk.open_off), msg, is_line=True)

        # The compile-time mirror: smr_link_count feeds
        # smr::detail::children_cover_all_links_v, so it must exist and
        # match the source-level member count.
        own = model.block_text(ci.block)
        cm = SMR_LINK_COUNT_RE.search(own)
        if cm is None:
            ctx.report(
                "R5", ci.line,
                f"node '{ci.name}' defines smr_children but no "
                f"'static constexpr std::size_t smr_link_count' — the "
                f"compile-time trait children_cover_all_links_v cannot "
                f"cross-check it", is_line=True)
        elif int(cm.group(1)) != len(pointer_members):
            ctx.report(
                "R5", model.line_of(ci.block.open_off + cm.start()),
                f"'{ci.name}::smr_link_count' is {cm.group(1)} but the class "
                f"declares {len(pointer_members)} link/vslot member(s)",
                is_line=True)


# ---- R6: memory-order discipline -----------------------------------------
#
# Every non-seq_cst atomic op in the audited directories must carry
# `// lfrc-lint: order(<key>)` on its own line or the line above, where
# <key> names the pairing this op participates in (the release store this
# acquire reads from, the fence this relaxed op is sequenced against, ...).
# The per-file check here flags unannotated ops and stale annotations;
# pairing resolution (every non-`unpaired-` key must have >= 2 sites) is a
# whole-run aggregate — see order_pairing_findings(), called by the driver
# after all files are collected so a release in epoch.cpp can pair with the
# acquire in epoch.hpp.

def check_r6(ctx: RuleContext):
    model = ctx.model
    if not is_order_audited(ctx.relpath, model):
        return
    src_lines = model.text.splitlines()

    def snippet(line: int) -> str:
        raw = src_lines[line - 1] if 0 < line <= len(src_lines) else ""
        raw = raw.split("//", 1)[0].strip()
        return raw[:80]

    token_lines: dict[int, list[str]] = {}
    for m in ORDER_TOKEN_RE.finditer(model.stripped):
        token_lines.setdefault(model.line_of(m.start()), []).append(m.group(1))

    keyed: dict[int, str] = {}
    for line, words in model.annotations.items():
        for w in words:
            km = ORDER_KEY_RE.match(w)
            if km:
                keyed[line] = km.group(1)

    for line, toks in sorted(token_lines.items()):
        key = keyed.get(line) or keyed.get(line - 1)
        if key is None:
            ctx.report(
                "R6", line,
                f"non-seq_cst atomic op (memory_order_{toks[0]}) without "
                f"'// lfrc-lint: order(<pairing>)' — name the "
                f"release/acquire or fence site it pairs with (prefix "
                f"'unpaired-' if it provably has no ordering partner)",
                is_line=True)
        else:
            ctx.order_sites.append(
                OrderSite(key, ctx.relpath, line, snippet(line)))

    for line, key in sorted(keyed.items()):
        if line not in token_lines and (line + 1) not in token_lines:
            ctx.report(
                "R6", line,
                f"stale annotation: order({key}) on a line with no "
                f"non-seq_cst atomic op — delete it or move it to the op it "
                f"documents", is_line=True)


def order_pairing_findings(sites: list[OrderSite]) -> list[Finding]:
    """Whole-run pairing resolution: every key must resolve to >= 2
    annotated sites (its pairing counterpart), unless `unpaired-`-prefixed.
    Run after collecting sites from every linted file."""
    by_key: dict[str, list[OrderSite]] = {}
    for s in sites:
        by_key.setdefault(s.key, []).append(s)
    findings: list[Finding] = []
    for key in sorted(by_key):
        occ = by_key[key]
        if key.startswith(UNPAIRED_PREFIX) or len(occ) >= 2:
            continue
        s = occ[0]
        findings.append(Finding(
            "R6", s.path, s.line,
            f"dangling pairing: order({key}) resolves to no counterpart "
            f"site in this lint run — a pairing needs both ends annotated "
            f"with the same key (or an 'unpaired-' prefix if one-sided)"))
    return findings


def order_table(sites: list[OrderSite]) -> str:
    """The fence-pairing table artifact (markdown), grouped by key.
    DESIGN.md §16 embeds this via docs/fence_pairings.md; ci.sh regenerates
    it and diffs to keep the committed copy fresh."""
    by_key: dict[str, list[OrderSite]] = {}
    for s in sites:
        by_key.setdefault(s.key, []).append(s)
    lines = [
        "# Fence-pairing table",
        "",
        "Generated by `lfrc_lint --order-table` from the `order(<key>)`",
        "annotations R6 enforces (DESIGN.md §16). Every non-seq_cst atomic",
        "op in the audited directories appears here; keys without an",
        "`unpaired-` prefix have >= 2 sites — the two (or more) ends of one",
        "release/acquire or fence pairing. Do not edit by hand:",
        "`python3 tools/lfrc_lint/lfrc_lint.py --root . --order-table"
        " docs/fence_pairings.md src`.",
        "",
        "| pairing key | site | operation |",
        "|---|---|---|",
    ]
    for key in sorted(by_key):
        for s in sorted(by_key[key], key=lambda s: (s.path, s.line)):
            op = s.snippet.replace("|", "\\|")
            lines.append(f"| `{key}` | {s.path}:{s.line} | `{op}` |")
    lines.append("")
    paired = sum(1 for k in by_key if not k.startswith(UNPAIRED_PREFIX))
    unpaired = len(by_key) - paired
    lines.append(f"{len(sites)} annotated sites, {paired} pairings, "
                 f"{unpaired} unpaired keys.")
    lines.append("")
    return "\n".join(lines)


# ---- R7: descriptor-sequence discipline ----------------------------------
#
# The reuse engine (DESIGN.md §13, Arbel-Raviv & Brown) never reclaims
# descriptors; a descriptor name is only meaningful together with the
# sequence number captured when it was resolved. Two obligations follow for
# any code reading a pooled descriptor's *per-use* fields (anything other
# than the seq/status control words):
#
#   (a) a snapshot read must be re-validated before its value is acted on:
#       the enclosing function must check the sequence (desc_seq_of /
#       seq_of_status / read_status) at some point AFTER the read. Owner
#       contexts — the thread that just claimed the descriptor and hasn't
#       published it yet — annotate '// lfrc-lint: seq-owner'. Sites whose
#       *acting CAS* compares against the sequence-tagged descriptor word
#       itself (validation atomic with the act, e.g. the phase-2 unroll)
#       annotate '// lfrc-lint: seq-carried'.
#   (b) the decision CAS on the status word must carry the captured
#       sequence in its expected/desired packing (desc_seq_of within the
#       statement), so a helper of generation n can never conclude an
#       operation of generation n+1.

def _descriptor_fields(model: SourceModel) -> set[str]:
    """Per-use field names of *_descriptor classes (and structs nested
    inside them, e.g. the entry array element type)."""
    desc_blocks = []
    fields: set[str] = set()
    for ci in model.classes:
        if DESC_CLASS_RE.search(ci.name):
            desc_blocks.append(ci.block)
            for m in ci.members:
                if not DESC_CONTROL_FIELD_RE.search(m.name):
                    fields.add(m.name)
    for ci in model.classes:
        blk = ci.block
        if any(d.open_off < blk.open_off and blk.close_off < d.close_off
               for d in desc_blocks):
            for m in ci.members:
                if not DESC_CONTROL_FIELD_RE.search(m.name):
                    fields.add(m.name)
    return fields


def check_r7(ctx: RuleContext):
    model = ctx.model
    if not is_descriptor_engine(ctx.relpath, model):
        return
    fields = _descriptor_fields(model)
    if not fields:
        return

    # (a) per-use reads need a trailing sequence validation.
    access_re = re.compile(
        r"(?:\.|->)\s*(%s)\b(?!\s*\()" % "|".join(
            re.escape(f) for f in sorted(fields)))
    flagged_lines: set[int] = set()
    for m in access_re.finditer(model.stripped):
        line = model.line_of(m.start())
        if line in flagged_lines:
            continue
        if model.annotated(line, "seq-owner") or \
                model.annotated(line, "seq-carried"):
            continue
        fn = model.enclosing_function(m.start())
        if fn is None:
            continue  # declarations / member-init lists
        # The field's own declaration inside the class is not a read.
        hdr = fn.header or ""
        if re.match(r"\s*(struct|class)\b", hdr):
            continue
        rest = model.stripped[m.end():fn.close_off]
        if SEQ_VALIDATE_RE.search(rest):
            continue
        flagged_lines.add(line)
        ctx.report(
            "R7", m.start(),
            f"per-use descriptor field '{m.group(1)}' read with no "
            f"sequence re-validation before the function acts on it — a "
            f"reused descriptor can change generation under this snapshot "
            f"(validate with desc_seq_of/read_status after the read, or "
            f"annotate '// lfrc-lint: seq-owner' in owner-only context)")

    # (b) the decision CAS on a status word must carry the sequence.
    for m in ATOMIC_OP_RE.finditer(model.stripped):
        recv, op = m.group(1), m.group(2)
        if not op.startswith("compare_exchange"):
            continue
        if "status" not in recv:
            continue
        line = model.line_of(m.start())
        stmt_start = max(model.stripped.rfind(";", 0, m.start()),
                         model.stripped.rfind("{", 0, m.start()))
        lookback = model.stripped[
            max(stmt_start + 1, m.start() - STATUS_CAS_LOOKBACK):m.start()]
        argtext = balanced_args(model.stripped, m.end() - 1)
        stmt = lookback + (argtext or "")
        if re.search(r"\b(desc_seq_of|pack_status|seq_of_status)\s*\(", stmt):
            continue
        ctx.report(
            "R7", m.start(),
            f"decision CAS on '{recv}' does not carry the captured "
            f"descriptor sequence (no desc_seq_of/pack_status in the "
            f"statement) — a stale helper could conclude a later "
            f"generation's operation")


ALL_CHECKS = (check_r1, check_r2, check_r3, check_r4, check_r5,
              check_r6, check_r7)


def run_rules(model: SourceModel, relpath: str,
              rules: tuple[str, ...] = RULES):
    """Returns (findings, order_sites). order_sites feed the whole-run R6
    pairing resolution and the fence-pairing table."""
    ctx = RuleContext(model, relpath)
    for check in ALL_CHECKS:
        rule = check.__name__.split("_")[-1].upper()
        if rule in rules:
            check(ctx)
    ctx.findings.sort(key=lambda f: (f.line, f.rule))
    return ctx.findings, ctx.order_sites
