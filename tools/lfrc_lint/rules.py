"""lfrc_lint rules R1-R5: the paper's Section-3 LFRC-compliance
preconditions, as mechanical checks over a SourceModel.

Scope model
-----------
The LFRC/SMR seam splits the tree into two zones:

  policy internals   src/smr, src/dcas + the machinery they are built on
                     (src/lfrc, src/reclaim, src/gc, src/alloc, src/sim,
                     src/util). Raw cells, atomics and new/delete are the
                     *implementation* of the discipline here.
  client code        src/containers, src/store, src/snark, src/net,
                     examples and the fixture corpus. Every shared-pointer
                     access must go through policy/guard operations (the
                     paper's load/store/copy/destroy/CAS/DCAS set); rules
                     R1-R5 enforce exactly that. src/net is the canonical
                     long-lived-object client: connections outlive the
                     per-tick guards that protect store entries, so R2's
                     escape analysis is the rule that matters most there
                     (fixtures/r2_net_conn_*.hpp).

Escape hatches are explicit and greppable:
  // lfrc-lint: unlink-winner      R3 — call site IS the unlink winner
  // lfrc-lint: escape-ok          R2 — pointer escape reviewed by hand
  // lfrc-lint: quiescent          R1 — exclusive-access phase (ctor/dtor/
                                   single-owner accessor)
  // lfrc-lint: arena-route        R4 — policy-internal new/delete that IS
                                   the owner seam: the expression resolves
                                   to alloc::counted_base operator
                                   new/delete, i.e. the arena route itself
  // lfrc-lint: exempt(Rn)         any rule, with the rule named
Each hatch suppresses one line; none are wildcards over a file.

A file outside the policy directories can opt into the policy-internal
zone with a file-scope pragma (used by the fixture corpus, which lives
under tools/ rather than src/):
  // lfrc-lint-scope: policy-internal
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from cpp_model import Block, ClassInfo, SourceModel

POLICY_INTERNAL_DIRS = (
    "src/smr/", "src/dcas/", "src/lfrc/", "src/reclaim/",
    "src/gc/", "src/alloc/", "src/sim/", "src/util/",
)

RULES = ("R1", "R2", "R3", "R4", "R5")

LINK_TYPE_RE = re.compile(r"(?:\b|::)(link|ptr_field|cell_link)\s*<")
VSLOT_TYPE_RE = re.compile(r"(?:\b|::)(vslot|ll_field|cell_vslot)\s*<")
FLAG_TYPE_RE = re.compile(r"(?:\b|::)(flag|flag_field|cell_flag)\b")
ATOMIC_PTR_RE = re.compile(r"std\s*::\s*atomic\s*<[^;{}()]*\*")
NODE_BASE_RE = re.compile(r"\bnode_base\s*<")

ATOMIC_OP_RE = re.compile(
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(load|store|exchange|compare_exchange_weak|compare_exchange_strong|"
    r"fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor)\s*\("
)
RAW_CELL_RE = re.compile(r"(?:\.|->)\s*(raw|cell|ptr_cell|version_cell)\s*\(\s*\)")
EXCLUSIVE_RE = re.compile(r"(?:\.|->)\s*(exclusive_get|exclusive_set)\s*\(")

# Unlink-winning ops for R3 dominance: the link/flag CAS family plus the
# CASN erase claim (vclaim_mark_dead), whose success likewise means this
# thread — and only this thread — took the entry out of the structure.
CAS_OP_NAMES = ("dcas_link_flag", "cas_link", "flag_cas", "vclaim_mark_dead")
CAS_OP_RE = re.compile(r"\b(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead)\s*\(")
NEG_CAS_HEAD_RE = re.compile(
    r"if\s*\(\s*!\s*[\w.\->]*\s*(?:\.|->)?\s*"
    r"(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead)\b"
)
POS_CAS_HEAD_RE = re.compile(
    r"if\s*\((?![^)]*!\s*[\w.\->]*(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead))"
    r"[^)]*\b(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead)\s*\("
)
DIVERGE_RE = re.compile(r"\b(goto|continue|return|break|throw)\b")

GUARD_DECL_RE = re.compile(r"\bguard\b\s+([A-Za-z_]\w*)\s*[({]")
GUARD_PARAM_RE = re.compile(r"\bguard\s*&\s*([A-Za-z_]\w*)")
PROTECT_CALL = ("protect", "traverse", "vprotect", "vtraverse")

NEW_EXPR_RE = re.compile(r"(?<![:\w])new\b(?!\s*\()")
DELETE_EXPR_RE = re.compile(r"(?<![:\w])delete\b")

SMR_LINK_COUNT_RE = re.compile(
    r"\bsmr_link_count\s*=\s*(\d+)"
)
FCALL_RE = re.compile(r"(?<![\w.>])%s\s*\(\s*(?:[\w.\->]*?(?:\.|->))?([A-Za-z_]\w*)\s*\)")


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


SCOPE_PRAGMA_RE = re.compile(r"lfrc-lint-scope:\s*policy-internal")


def is_policy_internal(relpath: str, model: SourceModel | None = None) -> bool:
    p = relpath.replace("\\", "/")
    if any(p.startswith(d) or f"/{d}" in p for d in POLICY_INTERNAL_DIRS):
        return True
    return model is not None and bool(SCOPE_PRAGMA_RE.search(model.text))


def is_managed_node(ci: ClassInfo) -> bool:
    """A node class whose shared fields the policy layer owns: it derives
    from a policy node_base (or the counted Domain::object) or enumerates
    smr_children."""
    if NODE_BASE_RE.search(ci.bases or ""):
        return True
    if re.search(r"::object\b|counted_base\b", ci.bases or ""):
        return True
    return "smr_children" in ci.methods


def link_members(ci: ClassInfo):
    links, vslots = [], []
    for m in ci.members:
        if LINK_TYPE_RE.search(m.type_text):
            links.append(m)
        elif VSLOT_TYPE_RE.search(m.type_text):
            vslots.append(m)
    return links, vslots


class RuleContext:
    def __init__(self, model: SourceModel, relpath: str):
        self.model = model
        self.relpath = relpath
        self.findings: list[Finding] = []
        self.managed = [c for c in model.classes if is_managed_node(c)]
        # Member names through which shared pointers flow (R1's cell set).
        self.link_member_names: set[str] = set()
        for ci in self.managed:
            ls, vs = link_members(ci)
            self.link_member_names.update(m.name for m in ls)
            self.link_member_names.update(m.name for m in vs)
            for m in ci.members:
                if ATOMIC_PTR_RE.search(m.type_text):
                    self.link_member_names.add(m.name)

    def report(self, rule: str, off_or_line: int, message: str, *, is_line=False):
        line = off_or_line if is_line else self.model.line_of(off_or_line)
        if self.model.exempt(line, rule):
            return
        self.findings.append(Finding(rule, self.relpath, line, message))


# ---- R1: no raw atomic access to shared node cells -----------------------

def check_r1(ctx: RuleContext):
    model = ctx.model
    if is_policy_internal(ctx.relpath, model):
        return

    # (a) managed node classes must use policy field types, not raw atomics.
    for ci in ctx.managed:
        for m in ci.members:
            if ATOMIC_PTR_RE.search(m.type_text):
                ctx.report(
                    "R1", m.line,
                    f"managed node '{ci.name}' declares raw atomic pointer "
                    f"cell '{m.name}' ({m.type_text}); shared links must be "
                    f"policy link/vslot fields so every access routes "
                    f"through load/store/CAS/DCAS", is_line=True)

    # (b) no direct atomic op through a link-typed / atomic-ptr member.
    for m in ATOMIC_OP_RE.finditer(model.stripped):
        recv, op = m.group(1), m.group(2)
        segs = re.split(r"\s*(?:\.|->)\s*", recv)
        if segs and segs[-1] in ctx.link_member_names:
            line = model.line_of(m.start())
            if model.annotated(line, "quiescent"):
                continue
            ctx.report(
                "R1", m.start(),
                f"raw atomic {op}() on shared link '{recv}' — use the "
                f"policy's guard/protect and cas_link/dcas_link_flag ops")

    # (c) reaching under a policy field for its cell is the same violation.
    for m in RAW_CELL_RE.finditer(model.stripped):
        line = model.line_of(m.start())
        if model.annotated(line, "quiescent"):
            continue
        ctx.report(
            "R1", m.start(),
            f".{m.group(1)}() unwraps a policy field's raw cell outside "
            f"policy internals")

    # (d) exclusive_get/exclusive_set are single-owner-phase ops: allowed
    # only in ctors/dtors, smr_dispose, tracing adapters, or annotated
    # quiescent accessors.
    for m in EXCLUSIVE_RE.finditer(model.stripped):
        line = model.line_of(m.start())
        if model.annotated(line, "quiescent"):
            continue
        fn = model.enclosing_function(m.start())
        fname = ""
        if fn is not None:
            nm = re.search(r"([~A-Za-z_]\w*)\s*\(", fn.header)
            fname = nm.group(1) if nm else ""
        if fname in ("smr_dispose", "lfrc_visit_children", "gc_trace",
                     "reset_chain") or fname.startswith("~"):
            continue
        ctx.report(
            "R1", m.start(),
            f"{m.group(1)}() outside an exclusive-access phase (annotate "
            f"'lfrc-lint: quiescent' if single-owner access is proven)")


# ---- R2: protected pointers must not escape their guard ------------------

# Member-store left-hand sides: a member access chain (x.f / x->f / x[i]) or
# a trailing-underscore member name — the shapes through which a pointer
# outlives the enclosing function.
STORE_LHS = r"([A-Za-z_]\w*(?:(?:\.|->)\w+|\[[^\]]*\])+|\b\w+_)"


def _split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside (), [], or {}. Good enough for the
    parameter/argument lists this repo writes; top-level template commas in
    a helper signature would mis-split, but then the param-name heuristic
    simply finds no escape and the rule stays silent (never a false flag)."""
    parts: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _balanced_args(text: str, open_off: int) -> str | None:
    """Text between the '(' at open_off and its matching ')', else None."""
    depth = 0
    for i in range(open_off, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_off + 1:i]
    return None


def _param_names(header: str, open_off: int) -> list[str]:
    args = _balanced_args(header, open_off)
    if args is None:
        return []
    names = []
    for p in _split_top_level(args):
        p = p.split("=")[0]  # strip default argument
        ids = re.findall(r"[A-Za-z_]\w*", p)
        names.append(ids[-1] if ids else "")
    return names


def _escaping_helper_params(model: SourceModel) -> dict[str, set[int]]:
    """Map helper name -> indices of parameters the helper lets escape
    (returns them, or stores them into a member). One level of
    interprocedural taint for R2: a guard-protected pointer passed at such
    an index escapes just as surely as a direct return/member store in the
    caller — the helper merely launders it."""
    helpers: dict[str, set[int]] = {}

    def visit(blk: Block):
        for ch in blk.children:
            if model.is_function_block(ch):
                nm = re.search(r"([~A-Za-z_]\w*)\s*\(", ch.header or "")
                if nm and not nm.group(1).startswith("~"):
                    params = _param_names(ch.header, nm.end() - 1)
                    body = model.block_text(ch)
                    esc = set()
                    for i, p in enumerate(params):
                        if not p:
                            continue
                        if (re.search(r"\breturn\s+" + re.escape(p) + r"\s*;",
                                      body)
                                or re.search(STORE_LHS + r"\s*=\s*"
                                             + re.escape(p) + r"\s*;", body)):
                            esc.add(i)
                    if esc:
                        helpers.setdefault(nm.group(1), set()).update(esc)
            visit(ch)

    visit(model.root)
    return helpers


def check_r2(ctx: RuleContext):
    model = ctx.model
    if is_policy_internal(ctx.relpath, model):
        return
    helpers = _escaping_helper_params(model)

    def scan_function(fn: Block):
        body = model.block_text(fn)
        base = fn.open_off + 1
        local_guards = set()
        for g in GUARD_DECL_RE.finditer(body):
            # `guard& g` in the header is a caller-owned guard, not local.
            local_guards.add(g.group(1))
        param_guards = {g.group(1) for g in GUARD_PARAM_RE.finditer(fn.header)}
        local_guards -= param_guards
        if not local_guards:
            return

        tainted: set[str] = set()
        for g in sorted(local_guards):
            gcall = re.compile(
                r"\b([A-Za-z_]\w*)\s*=[^=;]*\b" + re.escape(g) +
                r"\s*\.\s*(?:%s)\b" % "|".join(PROTECT_CALL))
            garg = re.compile(
                r"\b([A-Za-z_]\w*)\s*=[^=;]*\([^;]*\b" + re.escape(g) +
                r"\b\s*[,)]")
            binding = re.compile(
                r"auto\s*\[([^\]]+)\]\s*=[^;]*\b" + re.escape(g) + r"\b")
            for m in gcall.finditer(body):
                tainted.add(m.group(1))
            for m in garg.finditer(body):
                tainted.add(m.group(1))
            for m in binding.finditer(body):
                tainted.update(x.strip() for x in m.group(1).split(","))

        for var in sorted(tainted):
            for m in re.finditer(r"\breturn\s+" + re.escape(var) + r"\s*;",
                                 body):
                line = model.line_of(base + m.start())
                if model.annotated(line, "escape-ok"):
                    continue
                ctx.report(
                    "R2", base + m.start(),
                    f"'{var}' was protected by a guard local to this "
                    f"function and escapes via return; the protection dies "
                    f"with the guard (upgrade to an owning reference or "
                    f"take the guard as a parameter)")
            store = re.compile(
                STORE_LHS + r"\s*=\s*" + re.escape(var) + r"\s*;")
            for m in store.finditer(body):
                lhs = m.group(1)
                if lhs in tainted:
                    continue  # pointer-walk within the guard scope
                line = model.line_of(base + m.start())
                if model.annotated(line, "escape-ok"):
                    continue
                ctx.report(
                    "R2", base + m.start(),
                    f"guard-protected '{var}' stored to '{lhs}', outliving "
                    f"its guard scope (escape requires an upgrade to an "
                    f"owning/counted reference)")

        # One-level interprocedural escape: a tainted pointer passed to a
        # same-file helper at a parameter index that helper returns or
        # stores. Member/qualified calls (x.f(...), ns::f(...)) are not
        # matched — only bare helper names resolved in this file.
        if helpers and tainted:
            for m in re.finditer(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(", body):
                esc = helpers.get(m.group(1))
                if esc is None:
                    continue
                argtext = _balanced_args(body, m.end() - 1)
                if argtext is None:
                    continue
                args = [a.strip() for a in _split_top_level(argtext)]
                for i in sorted(esc):
                    if i >= len(args) or args[i] not in tainted:
                        continue
                    line = model.line_of(base + m.start())
                    if model.annotated(line, "escape-ok"):
                        continue
                    ctx.report(
                        "R2", base + m.start(),
                        f"guard-protected '{args[i]}' passed to "
                        f"'{m.group(1)}', which returns or stores that "
                        f"parameter — the pointer escapes its guard scope "
                        f"through the helper (upgrade to an owning "
                        f"reference, or pass the guard along)")

    def visit(blk: Block):
        for ch in blk.children:
            if model.is_function_block(ch):
                scan_function(ch)
            visit(ch)

    visit(model.root)


# ---- R3: retire_unlinked only from unlink-winner branches ----------------

def _success_dominated(model: SourceModel, off: int) -> bool:
    """True when the call at `off` is dominated by a successful unlink:
    either an ancestor `if (<cas op>(...))` (direct positive guard) or a
    preceding sibling `if (!<cas op>(...)) { <diverge> }` in the same
    block (fall-through guard)."""
    blk = model.enclosing_block(off)
    # direct positive guard on any ancestor-or-self header within function
    b: Block | None = blk
    while b is not None and b.header != "<file>":
        if POS_CAS_HEAD_RE.search(b.header or ""):
            return True
        if model.is_function_block(b):
            break
        b = b.parent
    # fall-through: a diverging negated-cas `if` earlier in the same block
    for ch in blk.children:
        if ch.close_off >= off:
            break
        if NEG_CAS_HEAD_RE.search(ch.header or ""):
            if DIVERGE_RE.search(model.block_text(ch)):
                return True
    return False


def check_r3(ctx: RuleContext):
    model = ctx.model
    if is_policy_internal(ctx.relpath, model):
        return
    for m in re.finditer(r"\bretire_unlinked\s*\(", model.stripped):
        # skip declarations/definitions of the op itself
        head = model.stripped[max(0, m.start() - 60):m.start()]
        if re.search(r"\bvoid\s+$", head):
            continue
        line = model.line_of(m.start())
        if model.annotated(line, "unlink-winner"):
            continue
        if _success_dominated(model, m.start()):
            continue
        ctx.report(
            "R3", m.start(),
            "retire_unlinked() call site is not dominated by a successful "
            "unlink CAS/DCAS — a loser branch retiring means double retire "
            "(annotate '// lfrc-lint: unlink-winner' only with a proof)")


# ---- R4: no new/delete of node types outside owner/policy ----------------
#
# Two legs share one walk:
#   client leg     (original rule) any new/delete in node-managing client
#                  code is a violation — allocation goes through
#                  make_owner/publish_ok, reclamation through
#                  retire_unlinked/reset_chain.
#   internal leg   now that alloc::counted_base routes every node through
#                  lfrc::alloc::arena, `owner` is the ONLY sanctioned
#                  allocation path even inside policy code: a direct
#                  new/delete of a managed node type would bypass the arena
#                  (and its poisoning/accounting). The make_owner / owner
#                  teardown expressions that ARE the seam carry
#                  '// lfrc-lint: arena-route'; anything unannotated is a
#                  bypass.

def check_r4(ctx: RuleContext):
    model = ctx.model
    internal = is_policy_internal(ctx.relpath, model)
    if not ctx.managed:
        return  # no policy-managed nodes here: plain-heap code is out of scope
    for regex, what in ((NEW_EXPR_RE, "new"), (DELETE_EXPR_RE, "delete")):
        for m in regex.finditer(model.stripped):
            if what == "delete":
                before = model.stripped[:m.start()].rstrip()
                if before.endswith("="):
                    continue  # `= delete` declaration syntax
            line = model.line_of(m.start())
            fn = model.enclosing_function(m.start())
            fname = ""
            if fn is not None:
                nm = re.search(r"([~A-Za-z_]\w*)\s*\(", fn.header)
                fname = nm.group(1) if nm else ""
            if fname == "smr_dispose":
                continue  # the policy contract's sanctioned teardown hook
            if internal:
                if model.annotated(line, "arena-route"):
                    continue
                ctx.report(
                    "R4", m.start(),
                    f"direct {what} inside policy-internal node code — node "
                    f"storage must route through alloc::counted_base (the "
                    f"arena seam); annotate '// lfrc-lint: arena-route' only "
                    f"where the expression resolves to counted_base's "
                    f"operator {what}")
            else:
                ctx.report(
                    "R4", m.start(),
                    f"direct {what} in node-managing code — allocation must "
                    f"go through policy make_owner/publish_ok and "
                    f"reclamation through retire_unlinked/reset_chain")


# ---- R5: smr_children completeness ---------------------------------------

def check_r5(ctx: RuleContext):
    model = ctx.model
    for ci in ctx.managed:
        links, vslots = link_members(ci)
        pointer_members = links + vslots
        has_children = "smr_children" in ci.methods

        # Paper-API nodes (snark level) enumerate via the visitor form
        # `lfrc_visit_children(V&) { v.on_child(member.exclusive_get()); }`
        # instead of the functor form. Treat it as the enumeration; the
        # smr_link_count mirror is a policy-seam concept and not required.
        if not has_children and "lfrc_visit_children" in ci.methods:
            vblk = ci.methods["lfrc_visit_children"]
            vbody = model.block_text(vblk)
            enumerated = set()
            for m in re.finditer(
                    r"\bon_child\s*\(\s*(?:[\w.\->]*?(?:\.|->))?"
                    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*exclusive_get\s*\(",
                    vbody):
                enumerated.add(m.group(1))
            for m in pointer_members:
                if m.name not in enumerated:
                    ctx.report(
                        "R5", m.line,
                        f"pointer member '{ci.name}::{m.name}' is missing "
                        f"from lfrc_visit_children — the counted unravel "
                        f"will never visit it (leak / lost child)",
                        is_line=True)
            continue

        if not has_children:
            if pointer_members:
                ctx.report(
                    "R5", ci.line,
                    f"node '{ci.name}' has pointer-bearing fields "
                    f"({', '.join(m.name for m in pointer_members)}) but no "
                    f"smr_children enumeration — tracing policies cannot "
                    f"see its children", is_line=True)
            continue

        blk = ci.methods["smr_children"]
        fm = re.search(r"\(\s*[\w:<>&\s]*?([A-Za-z_]\w*)\s*\)\s*$",
                       blk.header[:blk.header.rfind(")") + 1])
        functor = fm.group(1) if fm else "f"
        body = model.block_text(blk)
        enumerated = set()
        for m in re.finditer(FCALL_RE.pattern % re.escape(functor), body):
            enumerated.add(m.group(1))

        member_names = {m.name for m in pointer_members}
        for m in pointer_members:
            if m.name not in enumerated:
                ctx.report(
                    "R5", m.line,
                    f"pointer member '{ci.name}::{m.name}' is missing from "
                    f"smr_children — counted unravel and gc tracing will "
                    f"never visit it (leak / lost child)", is_line=True)
        for name in sorted(enumerated - member_names):
            flagish = any(m.name == name and FLAG_TYPE_RE.search(m.type_text)
                          for m in ci.members)
            msg = (f"smr_children of '{ci.name}' enumerates '{name}', which "
                   + ("is a flag field (flags hold no pointer and must not "
                      "be traced)" if flagish else
                      "is not a link/vslot member of the class"))
            ctx.report("R5", model.line_of(blk.open_off), msg, is_line=True)

        # The compile-time mirror: smr_link_count feeds
        # smr::detail::children_cover_all_links_v, so it must exist and
        # match the source-level member count.
        own = model.block_text(ci.block)
        cm = SMR_LINK_COUNT_RE.search(own)
        if cm is None:
            ctx.report(
                "R5", ci.line,
                f"node '{ci.name}' defines smr_children but no "
                f"'static constexpr std::size_t smr_link_count' — the "
                f"compile-time trait children_cover_all_links_v cannot "
                f"cross-check it", is_line=True)
        elif int(cm.group(1)) != len(pointer_members):
            ctx.report(
                "R5", model.line_of(ci.block.open_off + cm.start()),
                f"'{ci.name}::smr_link_count' is {cm.group(1)} but the class "
                f"declares {len(pointer_members)} link/vslot member(s)",
                is_line=True)


ALL_CHECKS = (check_r1, check_r2, check_r3, check_r4, check_r5)


def run_rules(model: SourceModel, relpath: str,
              rules: tuple[str, ...] = RULES) -> list[Finding]:
    ctx = RuleContext(model, relpath)
    for check in ALL_CHECKS:
        rule = check.__name__.split("_")[-1].upper()
        if rule in rules:
            check(ctx)
    ctx.findings.sort(key=lambda f: (f.line, f.rule))
    return ctx.findings
