// lfrc_lint fixture — R5 clean: both enumeration forms, complete and
// correctly mirrored.
#pragma once

namespace fixture {

/// Policy-seam form: smr_children functor + smr_link_count mirror.
template <typename P>
struct r5_good_node : P::template node_base<r5_good_node<P>> {
    typename P::template link<r5_good_node> next;
    typename P::template link<r5_good_node> down;
    typename P::template vslot<int> val;
    typename P::flag dead;
    int value = 0;

    static constexpr std::size_t smr_link_count = 3;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
        f(down);
        f(val);
    }
};

/// Paper-API form (snark level): lfrc_visit_children visitor over the
/// domain's ptr_fields; no smr_link_count required at this layer.
template <typename D>
struct r5_paper_node : D::object {
    typename D::template ptr_field<r5_paper_node> left;
    typename D::template ptr_field<r5_paper_node> right;
    int value = 0;

    void lfrc_visit_children(typename D::child_visitor& v) noexcept {
        v.on_child(left.exclusive_get());
        v.on_child(right.exclusive_get());
    }
};

}  // namespace fixture
