// lfrc_lint fixture — R2 clean with helpers: protected pointers may be
// passed to helpers that only *consume* them (read a field, compute a
// value) — nothing outlives the guard. Passing the guard itself along is
// the sanctioned way to let a callee keep the protection alive.
#pragma once

namespace fixture {

template <typename P>
struct r2hg_node : P::template node_base<r2hg_node<P>> {
    typename P::template link<r2hg_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Consumes the pointer: reads a field and returns a value, not the
/// pointer. No escape.
template <typename P>
inline int value_of(r2hg_node<P>* n) {
    return n == nullptr ? 0 : n->value;
}

/// Takes the guard as a parameter: the caller's protection covers the
/// whole call, and the returned pointer stays under the caller's guard.
template <typename P>
inline r2hg_node<P>* step_under(typename P::guard& g, r2hg_node<P>* n) {
    return g.traverse(1, n->next);
}

template <typename P>
inline int sum_via_helpers(P& policy,
                           typename P::template link<r2hg_node<P>>& head) {
    typename P::guard g(policy);
    r2hg_node<P>* h = g.protect(0, head);
    if (h == nullptr) return 0;
    r2hg_node<P>* n = step_under(g, h);
    return value_of(h) + value_of(n);
}

}  // namespace fixture
