// lfrc_lint fixture — R1 violations: raw atomic traffic on shared node
// cells, cell unwrapping, and exclusive access during concurrent phases.
#pragma once

#include <atomic>

namespace fixture {

template <typename P>
struct leaky_cell_node : P::template node_base<leaky_cell_node<P>> {
    std::atomic<leaky_cell_node<P>*> down{nullptr};  // lint-expect: R1
    typename P::template link<leaky_cell_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Raw atomic ops through the rogue member bypass every count/guard.
template <typename P>
inline leaky_cell_node<P>* walk_down(leaky_cell_node<P>* n) {
    return n->down.load(std::memory_order_acquire);  // lint-expect: R1
}

template <typename P>
inline void splice_down(leaky_cell_node<P>* n, leaky_cell_node<P>* d) {
    n->down.store(d, std::memory_order_release);  // lint-expect: R1
}

/// Unwrapping a policy field's cell re-creates the raw-access hole the
/// field types exist to close.
template <typename P>
inline void poke_cell(typename P::template link<leaky_cell_node<P>>& l) {
    l.cell();  // lint-expect: R1
}

/// exclusive_get is a single-owner-phase op; this accessor runs during
/// normal concurrent operation and is not annotated quiescent.
template <typename P>
inline leaky_cell_node<P>* sneak_read(typename P::template link<leaky_cell_node<P>>& l) {
    return l.exclusive_get();  // lint-expect: R1
}

}  // namespace fixture
