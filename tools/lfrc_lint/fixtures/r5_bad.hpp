// lfrc_lint fixture — R5 violations: incomplete enumerations, traced
// flags, and a stale/missing smr_link_count mirror. A missing child means
// the counted unravel never decrements it (leak) and the gc never marks
// it (premature free); a traced flag hands a non-pointer cell to tracing.
#pragma once

namespace fixture {

template <typename P>
struct r5_missing_child : P::template node_base<r5_missing_child<P>> {
    typename P::template link<r5_missing_child> next;
    typename P::template link<r5_missing_child> down;  // lint-expect: R5

    static constexpr std::size_t smr_link_count = 2;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
struct r5_traced_flag : P::template node_base<r5_traced_flag<P>> {
    typename P::template link<r5_traced_flag> next;
    typename P::flag dead;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {  // lint-expect: R5
        f(next);
        f(dead);
    }
};

template <typename P>
struct r5_stale_count : P::template node_base<r5_stale_count<P>> {
    typename P::template link<r5_stale_count> next;

    static constexpr std::size_t smr_link_count = 2;  // lint-expect: R5
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
struct r5_no_count : P::template node_base<r5_no_count<P>> {  // lint-expect: R5
    typename P::template link<r5_no_count> next;

    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
struct r5_no_enumeration : P::template node_base<r5_no_enumeration<P>> {  // lint-expect: R5
    typename P::template link<r5_no_enumeration> next;
};

template <typename D>
struct r5_paper_missing : D::object {
    typename D::template ptr_field<r5_paper_missing> left;
    typename D::template ptr_field<r5_paper_missing> right;  // lint-expect: R5

    void lfrc_visit_children(typename D::child_visitor& v) noexcept {
        v.on_child(left.exclusive_get());
    }
};

}  // namespace fixture
