// lfrc_lint fixture — R4 policy-internal leg, clean: the make_owner-style
// mint and the owner-teardown delete each carry '// lfrc-lint: arena-route',
// asserting the expression resolves to alloc::counted_base operator
// new/delete (i.e. it IS the arena seam, not a bypass); satellite teardown
// stays inside the sanctioned smr_dispose hook.
// lfrc-lint-scope: policy-internal
#pragma once

#include <cstddef>

namespace fixture {

struct r4_arena_payload {
    int bytes[4];
};

struct r4_arena_good_node : lfrc::alloc::counted_base {
    r4_arena_good_node* next = nullptr;
    r4_arena_payload* val = nullptr;

    void smr_dispose() {
        delete val;
    }
};

inline r4_arena_good_node* mint_routed() {
    // lfrc-lint: arena-route — counted_base operator new, the seam itself
    return new r4_arena_good_node();
}

inline void drop_routed(r4_arena_good_node* n) {
    delete n;  // lfrc-lint: arena-route
}

}  // namespace fixture
