// lfrc_lint fixture — R6 violations, one of each failure shape: an
// unannotated non-seq_cst op, a stale annotation on a line with no such
// op, and an annotated op whose pairing key resolves to no counterpart.
// The file opts into the audit zone; a properly paired acquire/release
// couple rides along to prove resolution does not over-flag.
// lfrc-lint-scope: order-audited
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class order_cell {
  public:
    /// (1) non-seq_cst op with no order(<key>) annotation at all.
    std::uint64_t read() const noexcept {
        return word_.load(std::memory_order_acquire);  // lint-expect: R6
    }

    /// (2) stale annotation: the op below it defaults to seq_cst, so the
    /// order() words document nothing.
    // lint-expect: R6
    // lfrc-lint: order(ghost-pairing)
    std::uint64_t read_strong() const noexcept {
        return word_.load();
    }

    /// (3) dangling pairing: annotated, but `lonely-release` has no second
    /// site anywhere in this lint run.
    void publish(std::uint64_t v) noexcept {
        word_.store(v, std::memory_order_release);  // lfrc-lint: order(lonely-release)
        // lint-expect: R6
    }

    /// Correctly paired couple — must stay clean.
    std::uint64_t peek_ready() const noexcept {
        return ready_.load(std::memory_order_acquire);  // lfrc-lint: order(handoff)
    }
    void mark_ready(std::uint64_t v) noexcept {
        ready_.store(v, std::memory_order_release);  // lfrc-lint: order(handoff)
    }

  private:
    std::atomic<std::uint64_t> word_{0};
    std::atomic<std::uint64_t> ready_{0};
};

}  // namespace fixture
