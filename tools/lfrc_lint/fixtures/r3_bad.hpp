// lfrc_lint fixture — R3 violations: retiring on the CAS loser path and
// retiring unconditionally after a non-diverging loser branch. Either way
// a node can be handed to the reclaimer by a thread that did NOT unlink
// it — the double-retire the paper's Clean/Decrement accounting forbids.
#pragma once

namespace fixture {

template <typename P>
struct r3_bad_node : P::template node_base<r3_bad_node<P>> {
    typename P::template link<r3_bad_node> next;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
inline void pop_retire_loser(P& policy,
                             typename P::template link<r3_bad_node<P>>& head) {
    typename P::guard g(policy);
    r3_bad_node<P>* h = g.protect(0, head);
    if (h == nullptr) return;
    r3_bad_node<P>* n = policy.peek(h->next);
    if (!policy.cas_link(head, h, n)) {
        policy.retire_unlinked(h);  // lint-expect: R3
    }
}

template <typename P>
inline void pop_retire_unconditional(P& policy,
                                     typename P::template link<r3_bad_node<P>>& head) {
    typename P::guard g(policy);
    r3_bad_node<P>* h = g.protect(0, head);
    if (h == nullptr) return;
    r3_bad_node<P>* n = policy.peek(h->next);
    if (!policy.cas_link(head, h, n)) {
        n = nullptr;  // loser falls through instead of diverging
    }
    policy.retire_unlinked(h);  // lint-expect: R3
}

}  // namespace fixture
