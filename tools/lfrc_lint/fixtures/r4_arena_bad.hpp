// lfrc_lint fixture — R4 policy-internal leg: now that alloc::counted_base
// routes every node through lfrc::alloc::arena, a direct new/delete of a
// managed node type is a violation even INSIDE policy code unless the
// expression is annotated as the seam itself — an unannotated site bypasses
// the arena (no magazine reuse, no ASan poisoning, no footprint accounting).
// lfrc-lint-scope: policy-internal
#pragma once

#include <cstddef>

namespace fixture {

struct r4_arena_bad_node : lfrc::alloc::counted_base {
    r4_arena_bad_node* next = nullptr;
    int value = 0;
};

// A policy-internal helper minting nodes off the sanctioned seam: this new
// resolves to counted_base::operator new, but nothing marks it as the
// make_owner seam, so the lint cannot tell it from an accidental bypass.
inline r4_arena_bad_node* mint_unrouted() {
    return new r4_arena_bad_node();  // lint-expect: R4
}

inline void drop_unrouted(r4_arena_bad_node* n) {
    delete n;  // lint-expect: R4
}

}  // namespace fixture
