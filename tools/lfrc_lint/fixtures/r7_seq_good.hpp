// lfrc_lint fixture — the compliant twin of r7_seq_bad: snapshot reads
// are re-validated against the descriptor sequence before the function
// acts, the decision CAS packs the captured sequence into both sides, and
// owner-context initialisation carries the seq-owner hatch. Any finding
// here is a false positive.
// lfrc-lint-scope: descriptor-engine
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct r7g_descriptor {
    struct entry {
        std::uint64_t addr = 0;
        std::uint64_t expected = 0;
        std::uint64_t desired = 0;
    };
    std::atomic<std::uint64_t> status_word{0};
    std::uint64_t seq = 0;
    std::uint32_t count = 0;
    entry ops[4];
};

inline std::uint64_t desc_seq_of(const r7g_descriptor* d) noexcept {
    return d->seq;
}
inline std::uint64_t pack_status(std::uint64_t seq, std::uint64_t st) noexcept {
    return (seq << 2) | st;
}

/// (a) compliant: the snapshot walk is re-validated before its result is
/// believed — a generation change discards the stale sum.
inline std::uint64_t sum_addrs(r7g_descriptor* d, std::uint64_t s) {
    std::uint64_t total = 0;
    const std::uint32_t n = d->count;
    for (std::uint32_t i = 0; i < n; ++i) {
        total += d->ops[i].addr;
    }
    if (desc_seq_of(d) != s) return 0;  // re-validate before acting
    return total;
}

/// (b) compliant: both sides of the decision CAS carry the sequence.
inline bool conclude(r7g_descriptor* d, std::uint64_t s) {
    std::uint64_t expected = pack_status(s, 1);
    return d->status_word.compare_exchange_strong(expected, pack_status(s, 2));
}

/// Owner context: the claiming thread initialises per-use fields before
/// the descriptor is published — the sequence cannot advance under it.
inline void init_entries(r7g_descriptor* d) {
    d->count = 2;        // lfrc-lint: seq-owner
    d->ops[0].addr = 1;  // lfrc-lint: seq-owner
    d->ops[1].addr = 2;  // lfrc-lint: seq-owner
}

}  // namespace fixture
