// lfrc_lint fixture — R2 violations, one level through a helper: the
// pointer is protected by a function-local guard, then handed to a helper
// that returns it or stores it into a member. The helper merely launders
// the escape; the protection still dies at the caller's `}`.
#pragma once

namespace fixture {

template <typename P>
struct r2h_node : P::template node_base<r2h_node<P>> {
    typename P::template link<r2h_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Returns its argument: passing a protected pointer here is a return
/// escape at one remove.
template <typename P>
inline r2h_node<P>* identity_hold(r2h_node<P>* n) {
    return n;
}

template <typename P>
class helper_cache {
  public:
    /// Stores its argument into a member: a store escape at one remove.
    void stash(r2h_node<P>* n) { last_ = n; }

    r2h_node<P>* grab(P& policy,
                      typename P::template link<r2h_node<P>>& head) {
        typename P::guard g(policy);
        r2h_node<P>* h = g.protect(0, head);
        stash(h);                 // lint-expect: R2
        return identity_hold(h);  // lint-expect: R2
    }

  private:
    r2h_node<P>* last_ = nullptr;
};

}  // namespace fixture
