// lfrc_lint fixture — R2 clean: protected pointers stay inside their
// guard's scope, or the guard is caller-owned, or the escape is upgraded.
#pragma once

namespace fixture {

template <typename P>
struct r2_node : P::template node_base<r2_node<P>> {
    typename P::template link<r2_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Caller owns the guard: returning the protected pointer is fine because
/// the protection outlives this frame.
template <typename P>
inline r2_node<P>* find_top(typename P::guard& g,
                            typename P::template link<r2_node<P>>& head) {
    r2_node<P>* h = g.protect(0, head);
    return h;
}

/// Local guard, value consumed in scope — the pointer never escapes.
template <typename P>
inline int sum_two(P& policy, typename P::template link<r2_node<P>>& head) {
    typename P::guard g(policy);
    r2_node<P>* a = g.protect(0, head);
    if (a == nullptr) return 0;
    r2_node<P>* b = g.traverse(1, a->next);
    if (b == nullptr || !g.upgrade(1)) return a->value;
    return a->value + b->value;
}

}  // namespace fixture
