// lfrc_lint fixture — R2 clean twin of r2_net_conn_bad: the connection
// caches the *value* it computed under the tick guard, never the protected
// pointer. Values copied out of an entry are the tick's result; the entry
// pointer stays inside the guard that justifies touching it.
#pragma once

namespace fixture {

template <typename P>
struct r2_netc_entry : P::template node_base<r2_netc_entry<P>> {
    typename P::template link<r2_netc_entry> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
struct r2_netc_connection {
    int fd = -1;
    int last_value = 0;  // a copied value may outlive the guard

    void handle_tick(P& policy, typename P::template link<r2_netc_entry<P>>& head) {
        typename P::guard tick(policy);
        r2_netc_entry<P>* e = tick.protect(0, head);
        if (e != nullptr) last_value = e->value;
    }
};

}  // namespace fixture
