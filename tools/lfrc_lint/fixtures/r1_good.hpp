// lfrc_lint fixture — R1 clean: every shared-pointer access goes through
// the policy seam (guard protect, peek, cas_link). No raw atomics, no cell
// unwrapping, no exclusive access outside sanctioned phases.
#pragma once

namespace fixture {

template <typename P>
struct good_node : P::template node_base<good_node<P>> {
    typename P::template link<good_node> next;
    typename P::flag dead;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Protected read whose result is consumed strictly inside the guard scope.
template <typename P>
inline int top_value(P& policy, typename P::template link<good_node<P>>& head) {
    typename P::guard g(policy);
    good_node<P>* h = g.protect(0, head);
    if (h == nullptr) return -1;
    int v = h->value;
    g.clear(0);
    return v;
}

/// peek() results feed CAS expected-values only — never dereferenced.
template <typename P>
inline bool push_front(P& policy, typename P::template link<good_node<P>>& head,
                       typename P::template owner<good_node<P>>& fresh) {
    typename P::guard g(policy);
    g.protect_new(0, fresh.get());
    good_node<P>* h = g.protect(1, head);
    policy.init_link(fresh.get()->next, h);
    if (policy.cas_link(head, h, fresh.get())) {
        policy.publish_ok(fresh);
        return true;
    }
    return false;
}

}  // namespace fixture
