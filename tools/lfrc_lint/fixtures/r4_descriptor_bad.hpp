// lfrc_lint fixture — R4 violations, descriptor flavor: node-managing code
// that heap-churns its own CASN-descriptor-like helper objects. The engine
// owns a permanent preallocated descriptor per slot (sequence-tagged words
// name it; nothing is ever freed); client code `new`ing a descriptor per
// operation reintroduces exactly the allocate/retire lifetime the reuse
// protocol deleted — a helper can dereference the freed block. Same rule,
// same fix: preallocate, name by sequence, never delete.
#pragma once

namespace fixture {

template <typename P>
struct r4_desc_node : P::template node_base<r4_desc_node<P>> {
    typename P::template link<r4_desc_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

// A hand-rolled operation descriptor: holds raw node pointers that helping
// threads will chase. Allocating one per operation is the bug.
template <typename P>
struct r4_op_descriptor {
    r4_desc_node<P>* target = nullptr;
    unsigned long expected = 0;
    unsigned long desired = 0;
};

template <typename P>
inline r4_op_descriptor<P>* begin_op(r4_desc_node<P>* n) {
    auto* d = new r4_op_descriptor<P>();  // lint-expect: R4
    d->target = n;
    return d;
}

template <typename P>
inline void end_op(r4_op_descriptor<P>* d) {
    delete d;  // lint-expect: R4
}

}  // namespace fixture
