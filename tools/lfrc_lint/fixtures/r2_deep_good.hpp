// lfrc_lint fixture — the compliant twin of r2_deep_bad: the same depth-3
// call shapes, but nothing escapes. The leaf reads through the pointer and
// accumulates a value; the return chain hands back a computed int, not the
// protected pointer. The fixed-point summaries must conclude "no escape"
// for every helper here — any finding is a false positive.
#pragma once

namespace fixture {

template <typename P>
struct r2dg_node : P::template node_base<r2dg_node<P>> {
    typename P::template link<r2dg_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Depth-3 value chain: forwards a *reading* of the node, never the node.
template <typename P>
inline int read1(r2dg_node<P>* n) {
    return n->value;
}
template <typename P>
inline int read2(r2dg_node<P>* n) {
    return read1(n);
}
template <typename P>
inline int read3(r2dg_node<P>* n) {
    return read2(n);
}

template <typename P>
class deep_reader {
  public:
    int sample(P& policy,
               typename P::template link<r2dg_node<P>>& head) {
        typename P::guard g(policy);
        r2dg_node<P>* h = g.protect(0, head);
        peek_top(h);         // inspects within the guard scope — fine
        return read3(h);     // returns an int, not the protected pointer
    }

  private:
    void peek_top(r2dg_node<P>* n) { peek_mid(n); }
    void peek_mid(r2dg_node<P>* n) { peek_leaf(n); }
    void peek_leaf(r2dg_node<P>* n) { hits_ += n->value; }

    int hits_ = 0;
};

}  // namespace fixture
