// lfrc_lint fixture — R2 violation, net-server shape: a per-tick guard
// protects a store entry and the handler caches the raw pointer inside the
// connection object ("so the next request on this connection skips the
// lookup"). The connection outlives the tick guard by construction — that
// cached pointer is exactly the dangling read the server's guard-per-tick
// discipline exists to prevent, and the lint must flag the store.
#pragma once

namespace fixture {

template <typename P>
struct r2_net_entry : P::template node_base<r2_net_entry<P>> {
    typename P::template link<r2_net_entry> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// A connection object: lives across many event-loop ticks, while each
/// tick's guard dies at the end of the tick that created it.
template <typename P>
struct r2_net_connection {
    int fd = -1;
    r2_net_entry<P>* hot_entry = nullptr;  // cached across ticks — the bug
};

/// The server's process_input shape: a per-tick guard, a connection that
/// outlives it. Caching the protected entry on the connection escapes.
template <typename P>
inline void handle_tick(r2_net_connection<P>& conn, P& policy,
                        typename P::template link<r2_net_entry<P>>& head) {
    typename P::guard tick(policy);
    r2_net_entry<P>* e = tick.protect(0, head);
    conn.hot_entry = e;  // lint-expect: R2
}

}  // namespace fixture
