// lfrc_lint fixture — R4 violations: direct new/delete of a policy-managed
// node type. `new` skips the owner protocol (no birth count, no hp
// announce, no gc root), `delete` frees behind every other thread's back.
#pragma once

namespace fixture {

template <typename P>
struct r4_bad_node : P::template node_base<r4_bad_node<P>> {
    typename P::template link<r4_bad_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
inline r4_bad_node<P>* make_raw() {
    return new r4_bad_node<P>();  // lint-expect: R4
}

template <typename P>
inline void free_raw(r4_bad_node<P>* n) {
    delete n;  // lint-expect: R4
}

}  // namespace fixture
