// lfrc_lint fixture — R2 violations: pointers protected by a function-local
// guard escaping via return and via member store. The guard dies at `}`;
// both escapes hand out a pointer with no protection behind it.
#pragma once

namespace fixture {

template <typename P>
struct r2_bad_node : P::template node_base<r2_bad_node<P>> {
    typename P::template link<r2_bad_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

template <typename P>
class top_cache {
  public:
    r2_bad_node<P>* remember_top(P& policy,
                                 typename P::template link<r2_bad_node<P>>& head) {
        typename P::guard g(policy);
        r2_bad_node<P>* h = g.protect(0, head);
        last_ = h;  // lint-expect: R2
        return h;   // lint-expect: R2
    }

  private:
    r2_bad_node<P>* last_ = nullptr;
};

}  // namespace fixture
