// lfrc_lint fixture — R7 violations: helper-side code acting on a pooled
// descriptor's per-use fields with no sequence re-validation, and a
// decision CAS on the status word that does not carry the captured
// sequence. Both are exactly the Arbel-Raviv & Brown bug class the reuse
// engine's sim mutant (mutate_strip_seq_validation) demonstrates.
// lfrc-lint-scope: descriptor-engine
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

inline std::uint64_t make_done(std::uint64_t seen) noexcept {
    return (seen << 2) | 3;
}

struct r7b_descriptor {
    struct entry {
        std::uint64_t addr = 0;
        std::uint64_t expected = 0;
        std::uint64_t desired = 0;
    };
    std::atomic<std::uint64_t> status_word{0};
    std::uint32_t count = 0;
    entry ops[4];
};

/// (a) snapshot reads with no later sequence check: the descriptor can be
/// recycled for generation n+1 while this helper still walks generation
/// n's entries.
inline std::uint64_t sum_addrs(r7b_descriptor* d) {
    std::uint64_t total = 0;
    const std::uint32_t n = d->count;  // lint-expect: R7
    for (std::uint32_t i = 0; i < n; ++i) {
        total += d->ops[i].addr;  // lint-expect: R7
    }
    return total;
}

/// (b) the conclusion CAS omits the captured sequence: a stale helper of
/// generation n can conclude generation n+1's operation.
inline bool conclude(r7b_descriptor* d, std::uint64_t seen) {
    std::uint64_t expected = seen;
    return d->status_word.compare_exchange_strong(
        expected, make_done(seen));  // lint-expect: R7
}

}  // namespace fixture
