// lfrc_lint fixture — the Valois trap as a must-flag mutant.
//
// Valois' corrected stack (and the repo's src/containers/valois_stack.hpp
// baseline) keeps nodes OUTSIDE any reclamation discipline: raw atomics on
// a type the policy layer never manages, which is fine — R1 is scoped to
// managed nodes. This mutant is the broken hybrid the paper's Section-3
// preconditions exist to outlaw: a node_base-derived (policy-managed!)
// node whose links are raw std::atomic cells mutated with plain load/
// store/CAS, so reference counts silently stop tracking the structure.
#pragma once

#include <atomic>

namespace fixture {

struct valois_mutant_node : node_base<valois_mutant_node> {
    std::atomic<valois_mutant_node*> next{nullptr};  // lint-expect: R1
    int value = 0;
};

inline void push_plain_cas(std::atomic<valois_mutant_node*>& head,
                           valois_mutant_node* n) {
    valois_mutant_node* h = head.load(std::memory_order_acquire);
    do {
        n->next.store(h, std::memory_order_relaxed);  // lint-expect: R1
    } while (!head.compare_exchange_weak(h, n, std::memory_order_release));
}

inline valois_mutant_node* pop_plain_cas(std::atomic<valois_mutant_node*>& head) {
    valois_mutant_node* h = head.load(std::memory_order_acquire);
    while (h != nullptr) {
        valois_mutant_node* n = h->next.load(std::memory_order_acquire);  // lint-expect: R1
        if (head.compare_exchange_weak(h, n, std::memory_order_acq_rel)) break;
    }
    return h;
}

}  // namespace fixture
