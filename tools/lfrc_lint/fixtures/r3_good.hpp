// lfrc_lint fixture — R3 clean: every retire_unlinked is dominated by a
// successful unlink CAS/DCAS (positive guard or diverging loser branch),
// or carries a reviewed unlink-winner annotation.
#pragma once

namespace fixture {

template <typename P>
struct r3_node : P::template node_base<r3_node<P>> {
    typename P::template link<r3_node> next;
    typename P::flag dead;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Positive guard: only the CAS winner reaches the retire.
template <typename P>
inline bool pop_guarded(P& policy, typename P::template link<r3_node<P>>& head) {
    typename P::guard g(policy);
    r3_node<P>* h = g.protect(0, head);
    if (h == nullptr) return false;
    r3_node<P>* n = policy.peek(h->next);
    if (policy.cas_link(head, h, n)) {
        policy.retire_unlinked(h);
        return true;
    }
    return false;
}

/// Fall-through guard: the loser branch diverges, so straight-line code
/// after it is the winner path.
template <typename P>
inline bool unlink_fallthrough(P& policy,
                               typename P::template link<r3_node<P>>& pred_link,
                               r3_node<P>* curr, r3_node<P>* succ) {
    if (!policy.dcas_link_flag(pred_link, curr->dead, curr, succ, true, true)) {
        return false;
    }
    policy.retire_unlinked(curr);
    return true;
}

/// The escape hatch: the claim happened through another primitive the
/// structural check cannot see, reviewed and annotated.
template <typename P>
inline void retire_claimed(P& policy, r3_node<P>* claimed) {
    // lfrc-lint: unlink-winner
    policy.retire_unlinked(claimed);
}

template <typename P>
struct r3_entry : P::template node_base<r3_entry<P>> {
    typename P::template vslot<int> val;
    typename P::flag dead;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(val);
    }
};

/// The CASN erase claim (vclaim_mark_dead) is an unlink-winning op:
/// success means this thread alone took the entry's value, so the winner
/// branch retires with no annotation.
template <typename P>
inline bool claim_and_retire(P& policy, r3_entry<P>& e, int* cur,
                             std::uint64_t ver) {
    if (policy.vclaim_mark_dead(e.val, ver, cur, e.dead)) {
        policy.retire_unlinked(cur);
        return true;
    }
    return false;
}

/// Same claim in fall-through form: the loser branch diverges, the
/// straight-line retire is the claim winner's.
template <typename P>
inline bool claim_fallthrough(P& policy, r3_entry<P>& e, int* cur,
                              std::uint64_t ver) {
    if (!policy.vclaim_mark_dead(e.val, ver, cur, e.dead)) {
        return false;
    }
    policy.retire_unlinked(cur);
    return true;
}

}  // namespace fixture
