// lfrc_lint fixture — the compliant twin of r6_order_bad: every
// non-seq_cst op names its pairing, one-sided sites use the `unpaired-`
// prefix, and seq_cst ops (explicit or defaulted) need nothing. Any
// finding here is a false positive.
// lfrc-lint-scope: order-audited
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class ordered_mailbox {
  public:
    /// Release/acquire handoff, both ends named.
    void post(std::uint64_t v) noexcept {
        payload_ = v;
        flag_.store(1, std::memory_order_release);  // lfrc-lint: order(mailbox-flag)
    }
    bool poll(std::uint64_t& out) const noexcept {
        if (flag_.load(std::memory_order_acquire) == 0) {  // lfrc-lint: order(mailbox-flag)
            return false;
        }
        out = payload_;
        return true;
    }

    /// Owner-only statistic: no ordering partner, honestly prefixed.
    void tick() noexcept {
        polls_.fetch_add(1, std::memory_order_relaxed);  // lfrc-lint: order(unpaired-owner-stat)
    }

    /// seq_cst ops are outside R6's scope — explicit or defaulted.
    std::uint64_t fence_read() const noexcept {
        return flag_.load(std::memory_order_seq_cst);
    }
    std::uint64_t strong_read() const noexcept { return flag_.load(); }

  private:
    std::atomic<std::uint64_t> flag_{0};
    std::atomic<std::uint64_t> polls_{0};
    std::uint64_t payload_ = 0;
};

}  // namespace fixture
