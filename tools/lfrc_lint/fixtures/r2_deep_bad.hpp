// lfrc_lint fixture — R2 violations through a depth-3 call chain. The
// escape is three frames away from the guard: `hold_top` hands the pointer
// to `hold_mid`, which hands it to `hold_leaf`, which finally stores it;
// the return chain launders through two pass-through helpers. The old
// one-level helper taint saw neither — only the fixed-point summaries in
// analysis.escape_summaries reach them.
#pragma once

namespace fixture {

template <typename P>
struct r2d_node : P::template node_base<r2d_node<P>> {
    typename P::template link<r2d_node> next;
    int value = 0;

    static constexpr std::size_t smr_link_count = 1;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
    }
};

/// Depth-3 return chain: each level just forwards its argument out.
template <typename P>
inline r2d_node<P>* pass1(r2d_node<P>* n) {
    return n;
}
template <typename P>
inline r2d_node<P>* pass2(r2d_node<P>* n) {
    return pass1(n);
}
template <typename P>
inline r2d_node<P>* pass3(r2d_node<P>* n) {
    return pass2(n);
}

template <typename P>
class deep_cache {
  public:
    r2d_node<P>* grab(P& policy,
                      typename P::template link<r2d_node<P>>& head) {
        typename P::guard g(policy);
        r2d_node<P>* h = g.protect(0, head);
        hold_top(h);      // lint-expect: R2
        return pass3(h);  // lint-expect: R2
    }

  private:
    /// Depth-3 store chain: only the leaf escapes, two calls down.
    void hold_top(r2d_node<P>* n) { hold_mid(n); }
    void hold_mid(r2d_node<P>* n) { hold_leaf(n); }
    void hold_leaf(r2d_node<P>* n) { last_ = n; }

    r2d_node<P>* last_ = nullptr;
};

}  // namespace fixture
