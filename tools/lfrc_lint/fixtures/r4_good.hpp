// lfrc_lint fixture — R4 clean: allocation through make_owner/publish_ok,
// reclamation through retire_unlinked; the only `delete` lives inside the
// policy contract's smr_dispose teardown hook (satellite allocations the
// chain walk cannot see).
#pragma once

namespace fixture {

struct r4_payload {
    int bytes[4];
};

template <typename P>
struct r4_good_node : P::template node_base<r4_good_node<P>> {
    typename P::template link<r4_good_node> next;
    typename P::template vslot<r4_payload> val;

    static constexpr std::size_t smr_link_count = 2;
    template <typename F>
    void smr_children(F&& f) {
        f(next);
        f(val);
    }

    void smr_dispose() {
        delete val.exclusive_get();
    }
};

template <typename P>
inline bool push_owned(P& policy,
                       typename P::template link<r4_good_node<P>>& head) {
    typename P::guard g(policy);
    auto fresh = policy.template make_owner<r4_good_node<P>>();
    g.protect_new(0, fresh.get());
    r4_good_node<P>* h = g.protect(1, head);
    policy.init_link(fresh.get()->next, h);
    if (policy.cas_link(head, h, fresh.get())) {
        policy.publish_ok(fresh);
        return true;
    }
    return false;
}

}  // namespace fixture
