"""lfrc_lint analysis core: per-function CFGs, a per-file call graph, and
fixed-point interprocedural escape summaries.

This module is what turned lfrc_lint from a pattern matcher into a (small)
program analyzer:

  * `build_cfg` lowers one function's brace-block tree into a statement-level
    control-flow graph. Conditions become nodes; an `if` whose condition is a
    positive unlink CAS gets a synthetic `cas-success` node on its taken edge,
    a negated one (`if (!cas) { diverge }`) gets the success node on its
    fall-through edge. R3's dominance question — "is this retire_unlinked
    reachable from function entry without passing a successful unlink?" —
    is then a plain BFS with the success nodes deleted, replacing the old
    sibling-scan structural heuristic.

  * `escape_summaries` runs a fixed-point over the file's call graph and
    answers, for every function parameter, whether the callee lets it escape
    (returns it, stores it into something that outlives the call, or hands it
    to another function that transitively does either). R2 uses this to track
    guard-protected pointers through arbitrary call depth instead of the old
    one-level helper taint.

Both analyses are intraprocedural-syntax conservative: no macro expansion, no
template instantiation, bare-name call resolution only (member calls through
an object are not chased). The failure direction is documented per rule —
R3's CFG over-approximates paths (extra paths can only add findings, never
hide a loser-branch retire), R2's summaries under-approximate aliasing inside
helpers (a helper that launders its parameter through a local is missed; the
fixture corpus pins what is and is not caught).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from cpp_model import Block, SourceModel

# Member-store left-hand sides: a member access chain (x.f / x->f / x[i]) or
# a trailing-underscore member name — the shapes through which a pointer
# outlives the enclosing function.
STORE_LHS = r"([A-Za-z_]\w*(?:(?:\.|->)\w+|\[[^\]]*\])+|\b\w+_)"

FUNC_NAME_RE = re.compile(r"([~A-Za-z_]\w*)\s*\(")
CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")
RETURN_SPAN_RE = re.compile(r"\breturn\b[^;]*;")


def split_top_level(text: str) -> list[str]:
    """Split on commas not nested inside (), [], or {}."""
    parts: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def balanced_args(text: str, open_off: int) -> str | None:
    """Text between the '(' at open_off and its matching ')', else None."""
    depth = 0
    for i in range(open_off, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[open_off + 1:i]
    return None


def param_names(header: str, open_off: int) -> list[str]:
    args = balanced_args(header, open_off)
    if args is None:
        return []
    names = []
    for p in split_top_level(args):
        p = p.split("=")[0]  # strip default argument
        ids = re.findall(r"[A-Za-z_]\w*", p)
        names.append(ids[-1] if ids else "")
    return names


# ---- call graph + escape summaries ---------------------------------------

@dataclass
class FunctionInfo:
    name: str
    block: Block
    params: list[str]


@dataclass
class ParamEscape:
    """What a function does with one of its parameters."""
    returns: bool = False   # the parameter (or an alias of it) is returned
    stores: bool = False    # stored into a member / outliving location
    chain: tuple[str, ...] = ()  # callee chain realizing the escape, deepest last


def collect_functions(model: SourceModel) -> list[FunctionInfo]:
    fns: list[FunctionInfo] = []

    def visit(blk: Block):
        for ch in blk.children:
            if model.is_function_block(ch):
                nm = FUNC_NAME_RE.search(ch.header or "")
                if nm and not nm.group(1).startswith("~"):
                    fns.append(FunctionInfo(
                        name=nm.group(1),
                        block=ch,
                        params=param_names(ch.header, nm.end() - 1)))
            visit(ch)

    visit(model.root)
    return fns


def escape_summaries(model: SourceModel) -> dict[str, dict[int, ParamEscape]]:
    """name -> {param index -> ParamEscape}, closed under the call graph.

    Seeded with direct escapes (`return p;`, `<member> = p;`), then iterated
    to a fixed point: parameter i of f escapes if f passes it (as a bare
    argument) to g at an index g lets escape. `returns` only propagates when
    the call result itself is returned — a discarded return value does not
    escape anything. Overloads sharing a name are merged (union), which errs
    toward flagging.
    """
    fns = collect_functions(model)
    bodies = {id(f): model.block_text(f.block) for f in fns}
    summ: dict[str, dict[int, ParamEscape]] = {}

    def upgrade(name: str, idx: int, returns: bool, stores: bool,
                chain: tuple[str, ...]) -> bool:
        pe = summ.setdefault(name, {}).setdefault(idx, ParamEscape())
        before = (pe.returns, pe.stores)
        pe.returns |= returns
        pe.stores |= stores
        if not pe.chain and chain:
            pe.chain = chain
        return (pe.returns, pe.stores) != before

    # seed: direct escapes
    for f in fns:
        body = bodies[id(f)]
        for i, p in enumerate(f.params):
            if not p:
                continue
            if re.search(r"\breturn\s+" + re.escape(p) + r"\s*;", body):
                upgrade(f.name, i, True, False, ())
            if re.search(STORE_LHS + r"\s*=\s*" + re.escape(p) + r"\s*;",
                         body):
                upgrade(f.name, i, False, True, ())

    # fixed point over call sites
    for _ in range(32):  # depth bound; summaries are monotone so this is ample
        changed = False
        for f in fns:
            body = bodies[id(f)]
            return_spans = [(m.start(), m.end())
                            for m in RETURN_SPAN_RE.finditer(body)]
            for call in CALL_RE.finditer(body):
                callee = summ.get(call.group(1))
                if callee is None or call.group(1) == f.name:
                    continue
                argtext = balanced_args(body, call.end() - 1)
                if argtext is None:
                    continue
                args = [a.strip() for a in split_top_level(argtext)]
                in_return = any(a <= call.start() < b
                                for a, b in return_spans)
                for j, pe in callee.items():
                    if j >= len(args) or args[j] not in f.params:
                        continue
                    i = f.params.index(args[j])
                    chain = (call.group(1),) + pe.chain
                    changed |= upgrade(
                        f.name, i,
                        returns=pe.returns and in_return,
                        stores=pe.stores,
                        chain=chain)
        if not changed:
            break
    return summ


# ---- control-flow graph ---------------------------------------------------

@dataclass
class CFGNode:
    id: int
    kind: str                    # 'entry' | 'exit' | 'stmt' | 'cas-success' | 'join'
    start: int = -1              # span in stripped text (stmt/cond nodes)
    end: int = -1
    succs: list["CFGNode"] = field(default_factory=list)

    def link(self, other: "CFGNode"):
        if other not in self.succs:
            self.succs.append(other)


class CFG:
    def __init__(self):
        self.nodes: list[CFGNode] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")

    def _new(self, kind: str, start: int = -1, end: int = -1) -> CFGNode:
        n = CFGNode(len(self.nodes), kind, start, end)
        self.nodes.append(n)
        return n

    def node_at(self, off: int) -> CFGNode | None:
        for n in self.nodes:
            if n.start <= off < n.end:
                return n
        return None


# Unlink-winning CAS heads, shared with rules.py (imported from here so the
# CFG and the rule agree on what "success" means).
CAS_OP_NAMES = ("dcas_link_flag", "cas_link", "flag_cas", "vclaim_mark_dead")
NEG_CAS_COND_RE = re.compile(
    r"\bif\s*\(\s*!\s*[\w.\->]*\s*(?:\.|->)?\s*"
    r"(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead)\b")
POS_CAS_COND_RE = re.compile(
    r"\bif\s*\((?![^)]*!\s*[\w.\->]*(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead))"
    r"[^)]*\b(dcas_link_flag|cas_link|flag_cas|vclaim_mark_dead)\s*\(")
DIVERGE_STMT_RE = re.compile(r"\b(goto|return|throw)\b")
BREAK_RE = re.compile(r"\bbreak\b")
CONTINUE_RE = re.compile(r"\bcontinue\b")
IF_HEAD_RE = re.compile(r"^\s*(?:else\b\s*)?if\s*\(")
LOOP_HEAD_RE = re.compile(r"^\s*(?:while|for)\s*\(")
INFINITE_LOOP_RE = re.compile(r"^\s*(?:while\s*\(\s*(?:true|1)\s*\)|for\s*\(\s*;\s*;\s*\))")
ELSE_ONLY_RE = re.compile(r"^\s*\}?\s*else\s*$")

_CLASS_HEAD_RE = re.compile(
    r"\b(?:struct|class|union|enum|namespace)\b")


@dataclass
class _Loop:
    cont: CFGNode | None   # continue target (loop condition), None for switch
    brk: CFGNode           # break target (after-loop join)


def _split_statements(text: str, base: int):
    """Yield (start, end) spans of `;`-terminated statements at paren depth 0,
    plus the trailing remainder (a block header, or nothing). Offsets are
    absolute (base + local)."""
    spans = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif c == ";" and depth == 0:
            spans.append((base + start, base + i + 1))
            start = i + 1
    return spans, (base + start, base + len(text))


def build_cfg(model: SourceModel, fn: Block) -> CFG:
    cfg = CFG()
    s = model.stripped

    def lower_seq(blk: Block, preds: list[CFGNode],
                  loops: list[_Loop]) -> list[CFGNode]:
        """Lower the contents of `blk`; return the fall-through frontier."""
        items: list[tuple] = []
        pos = blk.open_off + 1
        for ch in blk.children:
            items.append(("text", pos, ch.open_off))
            items.append(("block", ch))
            pos = ch.close_off + 1
        items.append(("text", pos, blk.close_off))

        frontier = preds
        k = 0
        pending_header: tuple[int, int] | None = None
        while k < len(items):
            it = items[k]
            if it[0] == "text":
                stmts, rem = _split_statements(s[it[1]:it[2]], it[1])
                for (a, b) in stmts:
                    text = s[a:b]
                    if not text.strip():
                        continue
                    node = cfg._new("stmt", a, b)
                    for p in frontier:
                        p.link(node)
                    frontier = [node]
                    if IF_HEAD_RE.search(text):
                        # braceless conditional: the diverge (if any) is only
                        # one arm — special-case the negated-CAS guard so
                        # `if (!cas(...)) return;` still yields its success
                        # fall-through edge.
                        if NEG_CAS_COND_RE.search(text) and \
                                DIVERGE_STMT_RE.search(
                                    text[NEG_CAS_COND_RE.search(text).end():]):
                            sn = cfg._new("cas-success")
                            node.link(sn)
                            frontier = [sn]
                        continue
                    if DIVERGE_STMT_RE.search(text):
                        node.link(cfg.exit)
                        frontier = []
                    elif BREAK_RE.search(text) and loops:
                        node.link(loops[-1].brk)
                        frontier = []
                    elif CONTINUE_RE.search(text):
                        tgt = next((l.cont for l in reversed(loops)
                                    if l.cont is not None), None)
                        if tgt is not None:
                            node.link(tgt)
                        frontier = []
                rem_text = s[rem[0]:rem[1]]
                pending_header = rem if rem_text.strip() else None
                k += 1
                continue

            ch: Block = it[1]
            header = s[pending_header[0]:pending_header[1]] \
                if pending_header else (ch.header or "")
            hspan = pending_header or (ch.open_off, ch.open_off)
            pending_header = None

            if model.is_function_block(ch) or _CLASS_HEAD_RE.search(header):
                # nested lambda / local class: opaque declaration, analyzed
                # as its own function if it contains retire sites
                node = cfg._new("stmt", hspan[0], ch.close_off + 1)
                for p in frontier:
                    p.link(node)
                frontier = [node]
                k += 1
                continue

            if IF_HEAD_RE.search(header):
                frontier, k = lower_if_chain(items, k, header, hspan,
                                             frontier, loops)
                continue

            if LOOP_HEAD_RE.search(header):
                cond = cfg._new("stmt", hspan[0], hspan[1])
                for p in frontier:
                    p.link(cond)
                after = cfg._new("join")
                if not INFINITE_LOOP_RE.search(header):
                    cond.link(after)
                body_exits = lower_seq(ch, [cond],
                                       loops + [_Loop(cond, after)])
                for e in body_exits:
                    e.link(cond)
                frontier = [after]
                k += 1
                continue

            if header.strip().startswith("switch"):
                cond = cfg._new("stmt", hspan[0], hspan[1])
                for p in frontier:
                    p.link(cond)
                after = cfg._new("join")
                outer_cont = next((l.cont for l in reversed(loops)
                                   if l.cont is not None), None)
                body_exits = lower_seq(ch, [cond],
                                       loops + [_Loop(outer_cont, after)])
                for e in body_exits:
                    e.link(after)
                cond.link(after)  # no-default fall-through
                frontier = [after]
                k += 1
                continue

            if header.strip() == "do":
                body_exits = lower_seq(ch, frontier, loops)
                frontier = body_exits  # the trailing while(...) ; is a stmt
                k += 1
                continue

            # plain scope / try / catch / else-less residue: sequential
            frontier = lower_seq(ch, frontier, loops)
            k += 1
        return frontier

    def lower_if_chain(items, k, header, hspan, preds, loops):
        """Lower `if {...} [else if {...}]* [else {...}]`; returns
        (frontier, next item index)."""
        after: list[CFGNode] = []
        cur_preds = preds
        while True:
            ch: Block = items[k][1]
            cond = cfg._new("stmt", hspan[0], hspan[1])
            for p in cur_preds:
                p.link(cond)
            taken: list[CFGNode] = [cond]
            not_taken: list[CFGNode] = [cond]
            if POS_CAS_COND_RE.search(header):
                sn = cfg._new("cas-success")
                cond.link(sn)
                taken = [sn]
            elif NEG_CAS_COND_RE.search(header):
                sn = cfg._new("cas-success")
                cond.link(sn)
                not_taken = [sn]
            after.extend(lower_seq(ch, taken, loops))
            k += 1
            # an else arm is the next (text, block) pair whose text run holds
            # nothing but `else` / `else if (...)`
            if k + 1 < len(items) and items[k][0] == "text":
                stmts, rem = _split_statements(
                    s[items[k][1]:items[k][2]], items[k][1])
                rem_text = s[rem[0]:rem[1]]
                if not stmts and rem_text.strip().startswith("else") and \
                        items[k + 1][0] == "block":
                    k += 1
                    if IF_HEAD_RE.search(rem_text):
                        header, hspan = rem_text, rem
                        cur_preds = not_taken
                        continue
                    if ELSE_ONLY_RE.match(rem_text):
                        after.extend(lower_seq(items[k][1], not_taken, loops))
                        k += 1
                        return after, k
            after.extend(not_taken)
            return after, k

    exits = lower_seq(fn, [cfg.entry], [])
    for e in exits:
        e.link(cfg.exit)
    return cfg


def success_dominated(cfg: CFG, off: int) -> bool:
    """True iff every entry→off path passes a cas-success node, i.e. the
    statement is unreachable once the success nodes are deleted."""
    target = cfg.node_at(off)
    if target is None:
        return False  # can't place the call: conservative, let the rule flag
    seen = {cfg.entry.id}
    work = [cfg.entry]
    while work:
        n = work.pop()
        for nxt in n.succs:
            if nxt.kind == "cas-success" or nxt.id in seen:
                continue
            if nxt.id == target.id:
                return False
            seen.add(nxt.id)
            work.append(nxt)
    return True
