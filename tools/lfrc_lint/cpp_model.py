"""Lightweight structural model of a C++ source file for lfrc_lint.

This is the self-contained fallback frontend: no libclang, no compiler —
just enough lexing to answer the structural questions rules R1-R5 ask:

  * comment/string stripping with line numbers preserved, so regexes can
    never match inside literals or prose;
  * `lfrc-lint:` annotation comments (the per-site escape hatches) and
    `lint-expect:` markers (fixture expectations), collected per line;
  * a brace-block tree (every `{...}` with its header text), giving
    enclosing-scope and dominating-branch structure;
  * class records (name, bases, members, methods) for the node-shape rules.

The model is deliberately conservative: it does not macro-expand and does
not resolve templates. What that costs in completeness is documented in
DESIGN.md §11 — template-dependent facts are covered by the compile-time
trait (smr::detail::children_cover_all_links_v) instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


ANNOTATION_RE = re.compile(r"lfrc-lint:\s*([a-zA-Z0-9\-(), ]+)")
EXPECT_RE = re.compile(r"lint-expect:\s*(R[1-7](?:\s*,\s*R[1-7])*)")


def strip_source(text: str):
    """Blank out comments, string and char literals (newlines preserved).

    Returns (stripped_text, annotations, expectations) where annotations
    maps line -> set of `lfrc-lint:` words and expectations maps
    line -> list of rule names from `lint-expect:` markers.
    """
    out = []
    annotations: dict[int, set[str]] = {}
    expectations: dict[int, list[str]] = {}
    i, n = 0, len(text)
    line = 1

    def note_comment(comment: str, at_line: int):
        m = ANNOTATION_RE.search(comment)
        if m:
            words = {w.strip() for w in m.group(1).split(",") if w.strip()}
            annotations.setdefault(at_line, set()).update(words)
        m = EXPECT_RE.search(comment)
        if m:
            rules = [r.strip() for r in m.group(1).split(",")]
            expectations.setdefault(at_line, []).extend(rules)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            note_comment(text[i:j], line)
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            note_comment(chunk, line)
            for ch in chunk:
                out.append("\n" if ch == "\n" else " ")
                if ch == "\n":
                    line += 1
            i = j
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                out.append("\n" if text[i] == "\n" else " ")
                if text[i] == "\n":
                    line += 1
                i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(out), annotations, expectations


@dataclass
class Block:
    """One `{...}` region. header = text between the previous statement
    boundary and the opening brace (the if-condition, function signature,
    class-head, ...). Offsets index into the stripped text; the opening
    brace is at `open_off`, the matching close at `close_off`."""

    open_off: int
    close_off: int = -1
    header: str = ""
    parent: "Block | None" = None
    children: list["Block"] = field(default_factory=list)

    def ancestors(self):
        b = self.parent
        while b is not None:
            yield b
            b = b.parent


@dataclass
class Member:
    type_text: str
    name: str
    line: int


@dataclass
class ClassInfo:
    name: str
    bases: str
    block: Block
    line: int
    members: list[Member] = field(default_factory=list)
    methods: dict[str, Block] = field(default_factory=dict)


CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "else", "do", "try", "catch",
    "namespace", "struct", "class", "union", "enum", "return",
}

CLASS_HEAD_RE = re.compile(
    r"\b(?:struct|class)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::\s*(.*))?$",
    re.S,
)
# Characters a function header may contain between its closing paren and the
# body brace: cv/ref/noexcept/override keywords, trailing return types,
# member-init lists. A plain charset test — regex backtracking on arbitrary
# header text is how linters hang.
FUNC_TAIL_CHARS = set(
    " \t\n"  # whitespace
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
    "-><:,*&~()"
)

MEMBER_DECL_RE = re.compile(
    r"^(?P<type>[\w:<>,\s*&\[\]]+?[\s*&>])(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:\{[^{}]*\}|=[^;]*)?$"
)


class SourceModel:
    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.stripped, self.annotations, self.expectations = strip_source(text)
        # line_of[i] = 1-based line of offset i
        self._line_starts = [0]
        for m in re.finditer(r"\n", self.stripped):
            self._line_starts.append(m.end())
        self.root = self._parse_blocks()
        self.classes = self._parse_classes()

    # ---- positions -------------------------------------------------------

    def line_of(self, off: int) -> int:
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= off:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def annotated(self, line: int, word: str) -> bool:
        """An annotation applies to its own line or the line below it."""
        for at in (line, line - 1):
            if word in self.annotations.get(at, set()):
                return True
        return False

    def exempt(self, line: int, rule: str) -> bool:
        for at in (line, line - 1):
            for word in self.annotations.get(at, set()):
                if word.startswith("exempt(") and rule in word:
                    return True
        return False

    # ---- block tree ------------------------------------------------------

    def _parse_blocks(self) -> Block:
        root = Block(open_off=-1, header="<file>")
        root.close_off = len(self.stripped)
        cur = root
        header_start = 0
        s = self.stripped
        for i, c in enumerate(s):
            if c == "{":
                header = s[header_start:i].strip()
                blk = Block(open_off=i, header=header, parent=cur)
                cur.children.append(blk)
                cur = blk
                header_start = i + 1
            elif c == "}":
                cur.close_off = i
                if cur.parent is not None:
                    cur = cur.parent
                header_start = i + 1
            elif c == ";":
                header_start = i + 1
        return root

    def enclosing_block(self, off: int) -> Block:
        blk = self.root
        descended = True
        while descended:
            descended = False
            for ch in blk.children:
                if ch.open_off < off < (ch.close_off if ch.close_off >= 0 else len(self.stripped)):
                    blk = ch
                    descended = True
                    break
        return blk

    def block_text(self, blk: Block, upto: int | None = None) -> str:
        end = blk.close_off if upto is None else min(upto, blk.close_off)
        return self.stripped[blk.open_off + 1:end]

    def own_text(self, blk: Block) -> str:
        """Block text with child-block bodies blanked (headers and the brace
        pairs kept — the braces double as statement boundaries)."""
        parts = []
        pos = blk.open_off + 1
        for ch in blk.children:
            parts.append(self.stripped[pos:ch.open_off + 1])
            parts.append(re.sub(r"[^\n]", " ", self.stripped[ch.open_off + 1:ch.close_off]))
            pos = ch.close_off
        parts.append(self.stripped[pos:blk.close_off])
        return "".join(parts)

    def is_function_block(self, blk: Block) -> bool:
        h = blk.header.strip()
        if not h or "(" not in h:
            return False
        first = re.match(r"[A-Za-z_]\w*", h)
        if first and first.group(0) in CONTROL_KEYWORDS:
            return False
        if CLASS_HEAD_RE.search(h):
            return False
        if h.endswith("]"):
            return True  # lambda introducer directly before the body
        rp = h.rfind(")")
        if rp == -1:
            return False
        return all(c in FUNC_TAIL_CHARS for c in h[rp + 1:])

    def enclosing_function(self, off: int) -> Block | None:
        blk = self.enclosing_block(off)
        while blk is not None and blk.header != "<file>":
            if self.is_function_block(blk):
                return blk
            blk = blk.parent
        return None

    # ---- classes ---------------------------------------------------------

    def _parse_classes(self) -> list[ClassInfo]:
        classes: list[ClassInfo] = []

        def visit(blk: Block):
            for ch in blk.children:
                m = CLASS_HEAD_RE.search(ch.header)
                if m:
                    ci = ClassInfo(
                        name=m.group(1),
                        bases=(m.group(2) or "").strip(),
                        block=ch,
                        line=self.line_of(ch.open_off),
                    )
                    self._fill_class(ci)
                    classes.append(ci)
                visit(ch)

        visit(self.root)
        return classes

    def _fill_class(self, ci: ClassInfo):
        blk = ci.block
        # Methods: direct child blocks whose headers look like functions.
        for ch in blk.children:
            if self.is_function_block(ch):
                name_m = re.search(r"([~A-Za-z_]\w*)\s*\(", ch.header)
                if name_m:
                    ci.methods[name_m.group(1)] = ch
        # Members: statements in the class's own text (child bodies blanked).
        # Braces are statement boundaries too, so a brace-bodied ctor/method
        # never bleeds into the declaration that follows it.
        own = self.own_text(blk)
        base_off = blk.open_off + 1
        for stmt_m in re.finditer(r"[^;{}]*[;{}]", own, re.S):
            stmt = stmt_m.group(0)[:-1]
            boundary = stmt_m.group(0)[-1]
            if boundary == "}" or (boundary == "{" and
                                   CLASS_HEAD_RE.search(stmt)):
                continue  # close brace / nested type — not a declaration
            # boundary '{' with no class-head: a braced-initializer member
            # (`V value{};`) — parse its declarator like any other.
            stmt_off = base_off + stmt_m.start()
            decl = stmt.strip()
            if not decl or "(" in decl or ")" in decl:
                continue  # method decls / using / typedef-with-parens
            for kw in ("using ", "typedef ", "friend ", "static_assert",
                       "public", "private", "protected", "template"):
                if decl.startswith(kw):
                    decl = ""
                    break
            if not decl:
                continue
            decl = re.sub(r"\s+", " ", decl)
            m = MEMBER_DECL_RE.match(decl)
            if m:
                ci.members.append(Member(
                    type_text=m.group("type").strip(),
                    name=m.group("name"),
                    line=self.line_of(stmt_off),
                ))
