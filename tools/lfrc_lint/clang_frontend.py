"""Optional libclang frontend for lfrc_lint.

When the toolchain provides python libclang bindings (`import clang.cindex`)
AND a compile_commands.json exists, R1's receiver-type resolution runs on
the real AST instead of the fallback lexer: a member access is flagged by
its *resolved* type (std::atomic<T*> member of a node_base-derived record),
not by name matching. Rules R2-R5 are scope/structure checks the fallback
model answers exactly as well, so they always run on it — see
tools/lfrc_lint/README.md for the precision table.

This module is written to degrade, never to break the check: any import,
index, or parse failure returns None and the caller falls back. The
container images used by scripts/ci.sh do not ship libclang python
bindings today, so in CI this path reports "unavailable" — the fixture
corpus keeps both paths honest wherever the bindings do exist.
"""

from __future__ import annotations


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def check_r1_ast(path: str, relpath: str, compdb_dir: str):
    """Return a list of rules.Finding for R1 via the AST, or None when
    libclang is unusable (caller then uses the fallback lexer for R1)."""
    try:
        import clang.cindex as ci
    except Exception:
        return None
    try:
        from rules import Finding
        comp_db = ci.CompilationDatabase.fromDirectory(compdb_dir)
        cmds = comp_db.getCompileCommands(path)
        args = []
        if cmds:
            # strip compiler argv[0], the source file and -o pairs
            it = iter(list(cmds)[0].arguments)
            next(it, None)
            for a in it:
                if a in ("-o", "-c"):
                    next(it, None) if a == "-o" else None
                    continue
                if a.endswith((".cpp", ".cc", ".hpp")):
                    continue
                args.append(a)
        index = ci.Index.create()
        tu = index.parse(path, args=args)
    except Exception:
        return None

    findings = []

    def derives_node_base(record) -> bool:
        for c in record.get_children():
            if c.kind == ci.CursorKind.CXX_BASE_SPECIFIER:
                if "node_base" in c.type.spelling or \
                        "::object" in c.type.spelling:
                    return True
        return False

    def is_atomic_ptr(t) -> bool:
        s = t.get_canonical().spelling
        return s.startswith("std::atomic<") and "*" in s

    atomic_members = set()

    def visit(cursor):
        if cursor.kind in (ci.CursorKind.STRUCT_DECL,
                           ci.CursorKind.CLASS_DECL) and \
                cursor.is_definition() and derives_node_base(cursor):
            for f in cursor.get_children():
                if f.kind == ci.CursorKind.FIELD_DECL and \
                        is_atomic_ptr(f.type):
                    atomic_members.add(f.get_usr())
                    findings.append(Finding(
                        "R1", relpath, f.location.line,
                        f"managed node '{cursor.spelling}' declares raw "
                        f"atomic pointer cell '{f.spelling}' "
                        f"({f.type.spelling}) [ast]"))
        if cursor.kind == ci.CursorKind.CALL_EXPR and cursor.spelling in (
                "load", "store", "exchange", "compare_exchange_weak",
                "compare_exchange_strong", "fetch_add", "fetch_sub"):
            for ch in cursor.get_children():
                if ch.kind == ci.CursorKind.MEMBER_REF_EXPR:
                    ref = ch.referenced
                    if ref is not None and ref.get_usr() in atomic_members:
                        findings.append(Finding(
                            "R1", relpath, cursor.location.line,
                            f"raw atomic {cursor.spelling}() on managed "
                            f"node cell [ast]"))
        for ch in cursor.get_children():
            if ch.location.file and ch.location.file.name == path:
                visit(ch)

    try:
        visit(tu.cursor)
    except Exception:
        return None
    return findings
