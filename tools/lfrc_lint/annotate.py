#!/usr/bin/env python3
"""One-shot helper for the R6/R7 annotation sweep: append
`// lfrc-lint: <words>` to named lines of a file.

Usage: annotate.py FILE LINE:WORDS [LINE:WORDS ...]
e.g.   annotate.py src/x.hpp '42:order(epoch-pin)' '57:seq-owner, order(a)'

Refuses lines that already carry a comment (handle those by hand) and
verifies the file's line count is unchanged afterwards. Kept in-tree so
future annotation sweeps (new audited dirs, new pairing keys) do not
re-invent it; it is not part of the linter itself.
"""
import sys


def main() -> int:
    path = sys.argv[1]
    edits = {}
    for spec in sys.argv[2:]:
        line, words = spec.split(":", 1)
        edits[int(line)] = words.strip()
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines(keepends=True)
    for ln, words in sorted(edits.items()):
        text = lines[ln - 1]
        if "//" in text:
            print(f"{path}:{ln}: already has a comment — annotate by hand")
            return 1
        body = text.rstrip("\n")
        lines[ln - 1] = f"{body}  // lfrc-lint: {words}\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.writelines(lines)
    print(f"{path}: annotated {len(edits)} line(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
