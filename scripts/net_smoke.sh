#!/usr/bin/env bash
# Loopback smoke for the net front-end (DESIGN.md §14 / EXPERIMENTS.md E11):
# start lfrc_kvd, drive it with lfrc_loadgen for a couple of seconds, then
# SIGTERM the server and assert the whole contract at once —
#   * the generator exits 0 (connected, and the latency histogram is
#     non-empty: its exit status is 1 on zero responses),
#   * the server exits 0 (graceful drain reached ZERO reclaimer residual;
#     anything pinned or leaked makes it exit 1).
#
#   scripts/net_smoke.sh <build_dir> [duration_s] [rate] [json_out]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
duration="${2:-1.0}"
rate="${3:-4000}"
json_out="${4:-}"

kvd="$build_dir/src/net/lfrc_kvd"
loadgen="$build_dir/src/net/lfrc_loadgen"
if [[ ! -x "$kvd" || ! -x "$loadgen" ]]; then
  echo "net_smoke: $kvd / $loadgen not built" >&2
  exit 2
fi

port=$((17000 + RANDOM % 2000))
"$kvd" --port="$port" --workers=2 --policy=deferred &
server_pid=$!
trap 'kill -9 "$server_pid" 2>/dev/null || true' EXIT

# Readiness: the server prints its listening line after every worker's
# SO_REUSEPORT socket is bound; the generator also retries connects for a
# few seconds, so a short grace is enough.
sleep 0.3

gen_args=(--port="$port" --threads=2 --connections=4
          --rate="$rate" --duration="$duration")
if [[ -n "$json_out" ]]; then
  gen_args+=(--json="$json_out")
fi
"$loadgen" "${gen_args[@]}"

kill -TERM "$server_pid"
wait "$server_pid"   # non-zero (drain residual != 0) fails the smoke here
trap - EXIT

if [[ -n "$json_out" && ! -s "$json_out" ]]; then
  echo "net_smoke: $json_out missing or empty" >&2
  exit 1
fi
echo "net_smoke: OK (port $port, ${duration}s @ ${rate}/s, residual 0)"
