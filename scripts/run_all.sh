#!/usr/bin/env bash
# Reproduce everything: build, tests, every experiment, every example.
# Outputs land in test_output.txt and bench_output.txt at the repo root
# (the same artifacts EXPERIMENTS.md cites).
set -euo pipefail
cd "$(dirname "$0")/.."

# --ci: run the fail-fast tier-1 matrix (release/tsan/asan/sim) instead of
# the full experiment sweep. See scripts/ci.sh.
if [[ "${1:-}" == "--ci" ]]; then
  shift
  exec ./scripts/ci.sh "$@"
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Model-checking config: deterministic schedule exploration (tests/sim).
# Separate tree — LFRC_SIM instruments the hot paths, production stays pure.
cmake -B build-sim -G Ninja -DLFRC_SIM=ON
cmake --build build-sim
ctest --test-dir build-sim -L sim --output-on-failure 2>&1 | tee sim_output.txt

# Optional sanitizer matrix (slow): LFRC_RUN_SANITIZERS=1 ./scripts/run_all.sh
if [[ "${LFRC_RUN_SANITIZERS:-0}" == "1" ]]; then
  for san in thread address; do
    cmake -B "build-$san" -G Ninja -DLFRC_SANITIZE=$san
    cmake --build "build-$san"
    ctest --test-dir "build-$san" --output-on-failure 2>&1 | tee "test_output_$san.txt"
  done
fi

{
  for b in build/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue   # skip CMakeFiles/ etc.
    echo "=== $(basename "$b") ==="
    if [[ "$(basename "$b")" == "bench_e2_lfrc_ops" ]]; then
      "$b" --benchmark_min_time=0.2
    elif [[ "$(basename "$b")" == "bench_e6_refcount_contention" ]]; then
      # Also emit the machine-readable perf baseline (BENCH_e6.json) so
      # future PRs have a trajectory for the borrow-vs-counted-load gap.
      "$b" --max_threads=8 --json=BENCH_e6.json
    elif [[ "$(basename "$b")" == "bench_e10_casn" ]]; then
      # CASN descriptor-reuse baseline (BENCH_e10.json): reuse vs the
      # frozen allocate+retire engine, with the retired-descriptor columns
      # EXPERIMENTS.md E10 tracks (reuse must stay at zero).
      "$b" --max_threads=8 --json=BENCH_e10.json
    elif [[ "$(basename "$b")" == "bench_e9_store_throughput" ]]; then
      # End-to-end store throughput baseline (BENCH_e9.json): the
      # reclaimer-policy comparison EXPERIMENTS.md E9 tracks across PRs —
      # now seven columns, with smr::deferred expected within ~20% of ebr.
      "$b" --threads=1,4,8 --json=BENCH_e9.json
    else
      "$b"
    fi
    echo
  done
} 2>&1 | tee bench_output.txt

# E11: open-loop tail latency through the net front-end (BENCH_e11.json).
# Not a bench/ binary — it needs a live server; e11_sweep.sh owns the
# start/drive/drain choreography per cell (policies x offered rates,
# latency-vs-load curves) and asserts residual 0 on every way out.
echo "=== e11 net tail latency sweep ===" | tee -a bench_output.txt
./scripts/e11_sweep.sh build 2.0 BENCH_e11.json 2>&1 | tee -a bench_output.txt

echo
echo "=== examples (smoke) ==="
./build/examples/quickstart
./build/examples/conversion_tutorial
./build/examples/memory_shrink --waves=2 --wave_size=10000
./build/examples/pipeline --items=20000
./build/examples/membership --sessions=5000
./build/examples/work_stealing --tasks=500
./build/examples/gc_vs_lfrc --threads=2 --ops=10000
echo
echo "=== soak (10 s) ==="
./build/tests/soak --seconds=10 --threads=4
echo "ALL DONE"
