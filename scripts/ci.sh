#!/usr/bin/env bash
# Tier-1 CI matrix, fail-fast: the four configurations a change must keep
# green before it lands (README "CI matrix"). Each cell is a separate build
# tree so configurations never contaminate each other:
#
#   release   plain Release tree — the same cells run_all.sh exercises
#   tsan      LFRC_SANITIZE=thread   (racy protocols die here first)
#   asan      LFRC_SANITIZE=address  (UAF / double-free / leaks)
#   sim       LFRC_SIM=ON, quick schedule budget (deterministic interleaving
#             exploration; incompatible with the sanitizers, hence its own cell)
#
# ~5 minutes on a 1-CPU container. Select a subset: ./scripts/ci.sh tsan sim
set -euo pipefail
cd "$(dirname "$0")/.."

cells=("$@")
if [[ ${#cells[@]} -eq 0 ]]; then
  cells=(release tsan asan sim)
fi

run_cell() {
  local name="$1"; shift
  echo
  echo "=== ci cell: $name ==="
  "$@"
}

for cell in "${cells[@]}"; do
  case "$cell" in
    release)
      run_cell release cmake -B build -G Ninja
      cmake --build build
      ctest --test-dir build --output-on-failure
      ;;
    tsan)
      run_cell tsan cmake -B build-thread -G Ninja -DLFRC_SANITIZE=thread
      cmake --build build-thread
      # Runs the full suite including test_smr_conformance — every smr
      # policy's protocol races (counted DCAS, hazard announce/validate,
      # epoch pins, GC safepoints) die here first.
      # The Valois comparator and its type-stable block pool read recycled
      # memory BY DESIGN — the exact hazard the paper's §2 discusses and
      # LFRC exists to avoid. TSan rightly reports those reads as races,
      # and test_valois runs >10 min under TSan on one CPU; both are
      # non-LFRC baselines, so the thread cell skips them (Release and
      # ASan cells still run them in full).
      ctest --test-dir build-thread --output-on-failure \
        -E '^(test_alloc|test_valois)$'
      ;;
    asan)
      run_cell asan cmake -B build-address -G Ninja -DLFRC_SANITIZE=address
      cmake --build build-address
      # Full suite including test_smr_conformance: UAF/double-free in any
      # policy's reclamation path lands here. The smr::leaky baseline never
      # frees by design; lsan.supp suppresses exactly those allocations so
      # LSan still guards every other policy.
      LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
        ctest --test-dir build-address --output-on-failure
      ;;
    sim)
      run_cell sim cmake -B build-sim -G Ninja -DLFRC_SIM=ON
      cmake --build build-sim
      # Quick budget: enough schedules to catch protocol regressions without
      # turning CI into the overnight exploration run (EXPERIMENTS.md).
      LFRC_SIM_SCHEDULES="${LFRC_SIM_SCHEDULES:-500}" \
        ctest --test-dir build-sim -L sim --output-on-failure
      ;;
    *)
      echo "unknown ci cell: $cell (known: release tsan asan sim)" >&2
      exit 2
      ;;
  esac
done

echo
echo "CI MATRIX GREEN (${cells[*]})"
