#!/usr/bin/env bash
# Tier-1 CI matrix, fail-fast: the four configurations a change must keep
# green before it lands (README "CI matrix"). Each cell is a separate build
# tree so configurations never contaminate each other:
#
#   analysis  static analysis: lfrc_lint (fixture self-test + src must be
#             clean), plus clang-tidy / cppcheck when the host provides them
#   release   plain Release tree — the same cells run_all.sh exercises
#   tsan      LFRC_SANITIZE=thread   (racy protocols die here first)
#   asan      LFRC_SANITIZE=address  (UAF / double-free / leaks)
#   sim       LFRC_SIM=ON, quick schedule budget (deterministic interleaving
#             exploration; incompatible with the sanitizers, hence its own cell)
#
# analysis runs first: a lint finding fails the matrix in seconds, before
# any compile. ~5 minutes on a 1-CPU container. Select a subset:
#   ./scripts/ci.sh tsan sim        or        ./scripts/ci.sh --analysis
set -euo pipefail
cd "$(dirname "$0")/.."

cells=("$@")
if [[ ${#cells[@]} -eq 0 ]]; then
  cells=(analysis release tsan asan sim)
fi

run_cell() {
  local name="$1"; shift
  echo
  echo "=== ci cell: $name ==="
  "$@"
}

for cell in "${cells[@]}"; do
  case "$cell" in
    analysis|--analysis)
      # Wall-clock guard: analysis is the fail-fast tier, so the mandatory
      # checks must stay interactive (< 30 s) even as the fixture corpus and
      # rule set grow (R2 now does a per-file helper pre-pass). The optional
      # heavyweight analyzers below are outside this budget.
      SECONDS=0
      run_cell analysis python3 tools/lfrc_lint/lfrc_lint.py --root . --self-test
      # The real gate: src/ must lint clean. Fails fast on any finding. The
      # same run emits the machine-readable SARIF artifact CI dashboards
      # consume and regenerates the R6 fence-pairing table.
      mkdir -p build-analysis
      python3 tools/lfrc_lint/lfrc_lint.py --root . \
        --sarif build-analysis/lfrc_lint.sarif \
        --order-table build-analysis/fence_pairings.md src
      # SARIF sanity: well-formed 2.1.0 with the expected driver, so a
      # half-written artifact can't be uploaded as a green result.
      python3 - <<'PY'
import json
with open("build-analysis/lfrc_lint.sarif") as fh:
    doc = json.load(fh)
assert doc["version"] == "2.1.0", doc.get("version")
runs = doc["runs"]
assert runs and runs[0]["tool"]["driver"]["name"] == "lfrc_lint"
print(f"analysis: SARIF ok ({len(runs[0].get('results', []))} result(s))")
PY
      # Fence-table freshness: the committed docs/fence_pairings.md must
      # match what the annotations actually say — a memory-order edit that
      # skips the regeneration step fails here, not in review.
      if ! diff -u docs/fence_pairings.md build-analysis/fence_pairings.md; then
        echo "analysis: docs/fence_pairings.md is stale — regenerate with:" >&2
        echo "  python3 tools/lfrc_lint/lfrc_lint.py --root . --order-table docs/fence_pairings.md src" >&2
        exit 1
      fi
      if (( SECONDS >= 30 )); then
        echo "analysis: mandatory lint took ${SECONDS}s — over the 30 s fail-fast budget" >&2
        exit 1
      fi
      # AST second opinion (tidy_checks.py): opportunistic — degrades to a
      # notice where libclang python bindings are absent, fails the cell
      # where they exist and find a violation.
      python3 tools/lfrc_lint/lfrc_lint.py --root . --tidy src
      # Heavier analyzers ride along where the host has them. The container
      # images bake in only the base toolchain, so absence is a notice,
      # not a failure — lfrc_lint above is the mandatory check.
      if command -v clang-tidy >/dev/null 2>&1; then
        cmake -B build -G Ninja >/dev/null  # refresh compile_commands.json
        git ls-files 'src/**/*.cpp' 'src/*.cpp' | \
          xargs -r clang-tidy -p build --quiet
      else
        echo "analysis: clang-tidy not on PATH — skipped (config: .clang-tidy)"
      fi
      if command -v cppcheck >/dev/null 2>&1; then
        cppcheck --std=c++20 --enable=warning,performance,portability \
          --inline-suppr --error-exitcode=1 --quiet -I src src
      else
        echo "analysis: cppcheck not on PATH — skipped"
      fi
      ;;
    release)
      run_cell release cmake -B build -G Ninja
      cmake --build build
      ctest --test-dir build --output-on-failure
      # E10 smoke: exits non-zero if the reuse engine generates ANY
      # reclaimer traffic (retired / pending deltas must be zero).
      ./build/bench/bench_e10_casn --duration=0.05 --max_threads=2
      # Net loopback smoke: lfrc_kvd + lfrc_loadgen over 127.0.0.1 — asserts
      # a non-empty latency histogram and zero reclaimer residual after the
      # SIGTERM graceful drain (scripts/net_smoke.sh).
      ./scripts/net_smoke.sh build 0.5 3000
      ;;
    tsan)
      run_cell tsan cmake -B build-thread -G Ninja -DLFRC_SANITIZE=thread
      cmake --build build-thread
      # Runs the full suite including test_smr_conformance — every smr
      # policy's protocol races (counted DCAS, hazard announce/validate,
      # epoch pins, deferred's delta flush / review-queue handoff, GC
      # safepoints) die here first.
      # The Valois comparator and its type-stable block pool read recycled
      # memory BY DESIGN — the exact hazard the paper's §2 discusses and
      # LFRC exists to avoid. TSan rightly reports those reads as races,
      # and test_valois runs >10 min under TSan on one CPU; both are
      # non-LFRC baselines, so the thread cell skips them (Release and
      # ASan cells still run them in full).
      ctest --test-dir build-thread --output-on-failure \
        -E '^(test_alloc|test_valois)$'
      # R6's dynamic twin, both legs (tests/order_race_probe.cpp). Clean
      # orders first: the choreography itself must be race-free, so a
      # failure here is a real arena bug, not probe noise.
      ./build-thread/tests/order_race_probe
      # Mutant leg, inverted: the seeded weaken-the-pop-acquire mutation
      # severs the remote-head release/acquire pairing, and TSan MUST
      # report the recycled-payload race. The probe surviving means the
      # pairing the fence table documents is not actually load-bearing —
      # fail the cell.
      if ./build-thread/tests/order_race_probe --mutant 2>/dev/null; then
        echo "tsan: order_race_probe --mutant survived — weakened remote-pop orders produced no race" >&2
        exit 1
      else
        echo "tsan: order_race_probe --mutant died as required (remote-head pairing is load-bearing)"
      fi
      ;;
    asan)
      run_cell asan cmake -B build-address -G Ninja -DLFRC_SANITIZE=address
      cmake --build build-address
      # Full suite including test_smr_conformance: UAF/double-free in any
      # policy's reclamation path lands here (deferred's review queue frees
      # after a grace period — an early free is exactly an ASan hit). The smr::leaky baseline never
      # frees by design; lsan.supp suppresses exactly those allocations so
      # LSan still guards every other policy.
      LSAN_OPTIONS="suppressions=$PWD/scripts/lsan.supp" \
        ctest --test-dir build-address --output-on-failure
      # Arena poisoning interop, inverted: the probe reads a freed arena
      # payload. Recycled (never-unmapped) blocks are invisible to ASan's
      # own heap bookkeeping, so this only dies if the arena's manual
      # poison-on-free is working — the probe SURVIVING means the recycling
      # path silently lost sanitizer coverage, and the cell fails.
      if ./build-address/tests/arena_uaf_probe 2>/dev/null; then
        echo "asan: arena_uaf_probe survived a freed-payload read — arena poisoning is broken" >&2
        exit 1
      else
        echo "asan: arena_uaf_probe died as required (poison-on-free intact)"
      fi
      ;;
    sim)
      run_cell sim cmake -B build-sim -G Ninja -DLFRC_SIM=ON
      cmake --build build-sim
      # Quick budget: enough schedules to catch protocol regressions without
      # turning CI into the overnight exploration run (EXPERIMENTS.md).
      LFRC_SIM_SCHEDULES="${LFRC_SIM_SCHEDULES:-500}" \
        ctest --test-dir build-sim -L sim --output-on-failure
      ;;
    *)
      echo "unknown ci cell: $cell (known: analysis release tsan asan sim)" >&2
      exit 2
      ;;
  esac
done

echo
echo "CI MATRIX GREEN (${cells[*]})"
