#!/usr/bin/env bash
# E11 sweep (EXPERIMENTS.md E11 / DESIGN.md §14): latency-vs-load curves for
# the net front-end, policies x offered rates. Each cell is one full
# net_smoke-style run — fresh lfrc_kvd at --policy=<p>, open-loop lfrc_loadgen
# at --rate=<r>, SIGTERM + wait (the server's exit status asserts the graceful
# drain reached ZERO reclaimer residual) — writing a per-cell JSON; the cells
# are then merged into one BENCH_e11.json whose rows carry the policy/rate
# coordinates, so a plot of p99 against offered rate falls straight out.
#
#   scripts/e11_sweep.sh <build_dir> [duration_s] [json_out]
#     LFRC_E11_POLICIES="deferred ebr ..."   override the policy list
#     LFRC_E11_RATES="2000 8000 ..."         override the offered-rate list
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
duration="${2:-2.0}"
json_out="${3:-BENCH_e11.json}"

# borrowed rides the same epoch-pinned read path as ebr at the server, so the
# default sweep keeps the three distinct reclamation stories; leaky is the
# no-reclamation ceiling. Rates bracket the single-cell smoke's 8000/s.
policies=(${LFRC_E11_POLICIES:-deferred ebr leaky})
rates=(${LFRC_E11_RATES:-2000 8000 20000})

kvd="$build_dir/src/net/lfrc_kvd"
loadgen="$build_dir/src/net/lfrc_loadgen"
if [[ ! -x "$kvd" || ! -x "$loadgen" ]]; then
  echo "e11_sweep: $kvd / $loadgen not built" >&2
  exit 2
fi

cell_dir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$cell_dir"
}
trap cleanup EXIT

cell_jsons=()
for policy in "${policies[@]}"; do
  for rate in "${rates[@]}"; do
    port=$((17000 + RANDOM % 2000))
    echo "--- e11 cell: policy=$policy rate=$rate port=$port"
    "$kvd" --port="$port" --workers=2 --policy="$policy" &
    server_pid=$!
    sleep 0.3  # workers bind SO_REUSEPORT sockets; loadgen also retries

    cell_json="$cell_dir/cell_${policy}_${rate}.json"
    "$loadgen" --port="$port" --threads=2 --connections=4 \
               --rate="$rate" --duration="$duration" --json="$cell_json"

    kill -TERM "$server_pid"
    wait "$server_pid"   # non-zero = drain residual != 0 — fail the sweep
    server_pid=""

    if [[ ! -s "$cell_json" ]]; then
      echo "e11_sweep: $cell_json missing or empty" >&2
      exit 1
    fi
    cell_jsons+=("$policy" "$cell_json")
  done
done

# Merge: one top-level doc, each cell's loadgen JSON as a row stamped with
# its policy (rate_offered is already inside the cell document).
python3 - "$json_out" "${cell_jsons[@]}" <<'PY'
import json, sys
out, rest = sys.argv[1], sys.argv[2:]
rows = []
for policy, path in zip(rest[0::2], rest[1::2]):
    with open(path) as f:
        cell = json.load(f)
    rows.append({"policy": policy, **cell})
doc = {"bench": "e11_sweep", "cells": rows}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out} ({len(rows)} cells)")
PY

echo "e11_sweep: OK (${#policies[@]} policies x ${#rates[@]} rates, ${duration}s/cell, residual 0 everywhere)"
